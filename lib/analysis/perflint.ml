(* PerfLint: static memory-performance and occupancy analysis.

   Three layers share this module:

   1. [report_normalized] — the `proteus perflint` CLI surface. Runs
      over the same Normalize.clone'd, dbg.loc-carrying module
      KernelSan uses and produces per-kernel cost reports: every
      load/store/atomic classified as broadcast / coalesced /
      strided-N / scattered from the affine form of its address
      (Addrsym), shared-memory bank-conflict estimates, a
      register-pressure/occupancy estimate from the backend's own
      linear-scan results, and a divergence-cost estimate from the
      uniformity lattice weighted by Loopinfo trip counts.

   2. [classify_module] + [validate] — the measurement loop. The
      static classifier walks the *optimized* device module (the exact
      module codegen consumes) and keys every site structurally:
      (kernel symbol, block label, ordinal of the memory op within the
      block, access kind). The executor's site profiler
      (Counters.site_profile) uses the same key, so predicted
      transaction intervals can be compared against measured
      fresh-line counts per site. Codegen strips dbg.loc before any
      pass runs, so structural keys — not source locations — are the
      only stable join. Isel lowers each IR memory op to exactly one
      machine memory op, preserves block labels, and neither critical
      -edge splitting, spill insertion, nor the PTX round trip
      perturbs intra-block memory-op order, which is what makes the
      join sound.

   3. [gep_factors] — SpecAdvisor wiring: per-GEP address-class cost
      factors that make `w_addr` coalescing-aware (a fold inside a
      scattered address stream is worth more than one the coalescer
      already handles). Factors are >= 1.0, so scores only grow and
      every previously-recommended argument stays recommended.

   Known unsound corners (see DESIGN.md): launches are modelled as
   1-D (threadIdx.y/z are uniform 0), pointer phis resolve to
   Scattered, and the transaction model tracks start-address lines
   only — all deliberately matched to the executor's coalescing
   model. *)

open Proteus_support
open Proteus_ir
module Counters = Proteus_gpu.Counters
module Device = Proteus_gpu.Device

(* ------------------------------------------------------------------ *)
(* Memory-access classes                                               *)

type mem_class = Broadcast | Coalesced | Strided of int | Scattered

let class_name = function
  | Broadcast -> "broadcast"
  | Coalesced -> "coalesced"
  | Strided s -> Printf.sprintf "strided-%d" s
  | Scattered -> "scattered"

(* Constructor-level equality: strided-8 and strided-32 are the same
   class for accuracy accounting. *)
let same_class a b =
  match (a, b) with
  | Broadcast, Broadcast | Coalesced, Coalesced | Scattered, Scattered -> true
  | Strided _, Strided _ -> true
  | _ -> false

(* Per-lane byte stride of an affine address form. Within one warp of
   a 1-D launch only threadIdx.x varies lane to lane (the executor
   packs lanes along x; y/z tids are 0), so the stride is the
   coefficient of the pure [Tid 0] term. A [Tid 0] atom multiplied by
   anything else makes the stride lane-dependent. *)
let lane_stride (form : Affine.t) : [ `Uniform | `Stride of int | `Nonlinear ] =
  let has_tid0 (atoms, _) = List.mem (Affine.Tid 0) atoms in
  let tid0_terms = List.filter has_tid0 form.Affine.terms in
  match tid0_terms with
  | [] -> `Uniform
  | [ ([ Affine.Tid 0 ], s) ] -> `Stride s
  | _ -> `Nonlinear

let classify ~(width : int) (byte_off : Affine.t option) : mem_class =
  match byte_off with
  | None -> Scattered
  | Some form -> (
      match lane_stride form with
      | `Uniform | `Stride 0 -> Broadcast
      | `Stride s when abs s <= width -> Coalesced
      | `Stride s -> Strided s
      | `Nonlinear -> Scattered)

(* ------------------------------------------------------------------ *)
(* Transaction model                                                   *)

let ceil_div a b = (a + b - 1) / b

(* Predicted transactions (distinct cache lines) for one full-warp
   issue of [lanes] active lanes. Matches the executor's coalescing
   model: one line per distinct start-address/line pair; access width
   does not straddle. *)
let predicted_tx cls ~(lanes : int) ~(width : int) ~(line : int) : int =
  match cls with
  | Broadcast -> 1
  | Coalesced -> max 1 (ceil_div (lanes * width) line)
  | Strided s ->
      let s = abs s in
      if s >= line then lanes else max 1 (ceil_div (lanes * s) line)
  | Scattered -> lanes

(* Predicted [lo, hi] interval, with one line of slack for a base
   address that is not line-aligned. *)
let tx_interval cls ~(lanes : int) ~(width : int) ~(line : int) : int * int =
  match cls with
  | Broadcast -> (1, 1)
  | Coalesced ->
      (* the class covers strides in [1, width]: overlapping strides
         touch fewer lines than the nominal width*lanes footprint *)
      (1, min lanes (max 1 (ceil_div (lanes * width) line) + 1))
  | Strided s ->
      let s = abs s in
      if s >= line then (lanes, lanes)
      else
        let lo = max 1 (lanes * s / line) in
        (lo, min lanes (ceil_div (lanes * s) line + 1))
  | Scattered -> (1, lanes)

(* Best-fit class for a measured lines-per-issue ratio, used to label
   disagreements in reports. *)
let measured_class ~(r : float) ~(lanes : float) ~(width : int) ~(line : int) :
    mem_class =
  if r <= 1.01 then Broadcast
  else
    let coal = float_of_int (max 1 (ceil_div (int_of_float lanes * width) line)) in
    if r <= coal +. 1.01 then Coalesced
    else if r >= 0.9 *. lanes then Scattered
    else
      let s = int_of_float (Float.round (r *. float_of_int line /. lanes)) in
      Strided (max (width + 1) s)

(* ------------------------------------------------------------------ *)
(* Static site classification (validation side)                        *)

type space = Sp_global | Sp_shared | Sp_scratch

let space_name = function
  | Sp_global -> "global"
  | Sp_shared -> "shared"
  | Sp_scratch -> "scratch"

type static_site = {
  ss_sym : string;
  ss_block : string;
  ss_ord : int; (* memory-op ordinal within the block, code order *)
  ss_kind : Counters.access_kind;
  ss_width : int;
  ss_space : space;
  ss_class : mem_class;
  ss_root : string;
  ss_loc : (int * int) option;
}

let kind_name = function
  | Counters.Kload -> "load"
  | Counters.Kstore -> "store"
  | Counters.Katomic -> "atomic"

(* Walk one function, numbering memory ops per block in code order —
   the same ordinals the reference executor assigns to the lowered
   Old/Ost/Oatomic instructions. *)
let classify_func (m : Ir.modul) (f : Ir.func) : static_site list =
  let sx = Addrsym.create ~phi_linear:true m f in
  let sites = ref [] in
  List.iter
    (fun (b : Ir.block) ->
      let ord = ref 0 in
      List.iteri
        (fun k i ->
          let add ptr_op width kind =
            let o = !ord in
            incr ord;
            let pi = sx.Addrsym.resolve ptr_op in
            let space =
              match pi.Addrsym.root with
              | Addrsym.Ralloca _ -> Sp_scratch
              | Addrsym.Rglobal { Ir.gspace = Types.AS_shared; _ } -> Sp_shared
              | _ -> Sp_global
            in
            sites :=
              {
                ss_sym = f.Ir.fname;
                ss_block = b.Ir.label;
                ss_ord = o;
                ss_kind = kind;
                ss_width = max 1 width;
                ss_space = space;
                ss_class = classify ~width:(max 1 width) pi.Addrsym.byte_off;
                ss_root = Addrsym.root_name pi.Addrsym.root;
                ss_loc = sx.Addrsym.loc_at b.Ir.label k;
              }
              :: !sites
          in
          match i with
          | Ir.ILoad (d, p) ->
              add p (Types.size_of (Ir.reg_ty f d)) Counters.Kload
          | Ir.IStore (v, p) ->
              add p (Types.size_of (Ir.operand_ty m f v)) Counters.Kstore
          | Ir.ICall (_, a, [ p; v ]) when Ir.Intrinsics.is_atomic a ->
              add p (Types.size_of (Ir.operand_ty m f v)) Counters.Katomic
          | _ -> ())
        b.Ir.insts)
    f.Ir.blocks;
  List.rev !sites

(* Classify every kernel of [m]. For validation, [m] must be the
   optimized device module the backend consumes. *)
let classify_module (m : Ir.modul) : static_site list =
  m.Ir.funcs
  |> List.filter (fun (f : Ir.func) ->
         f.Ir.kind = Ir.Kernel && (not f.Ir.is_decl) && f.Ir.blocks <> [])
  |> List.concat_map (classify_func m)

(* ------------------------------------------------------------------ *)
(* Validation against the executor's site profile                      *)

type site_cmp = {
  c_site : static_site;
  c_issues : int;
  c_lanes : float; (* avg active lanes per issue *)
  c_lines : float; (* avg fresh lines per issue *)
  c_full : bool; (* comparison used full-mask issues only *)
  c_measured : mem_class;
  c_agree : bool;
}

type vresult = {
  v_static : int; (* classifiable (non-scratch) static sites *)
  v_matched : int; (* of those, executed at least once *)
  v_agree : int;
  v_rows : site_cmp list;
  v_by_class : (string * int * int) list; (* class name, matched, agreed *)
}

let accuracy_pct (v : vresult) : float =
  if v.v_matched = 0 then 100.0
  else 100.0 *. float_of_int v.v_agree /. float_of_int v.v_matched

let validate ~(device : Device.t) (sites : static_site list)
    (tbl : Counters.site_table) : vresult =
  let line = device.Device.l2_line in
  let rows = ref [] in
  let stat = ref 0 and matched = ref 0 and agree = ref 0 in
  List.iter
    (fun ss ->
      if ss.ss_space <> Sp_scratch then begin
        incr stat;
        let key =
          { Counters.sk_sym = ss.ss_sym; sk_block = ss.ss_block;
            sk_ord = ss.ss_ord; sk_kind = ss.ss_kind }
        in
        match Hashtbl.find_opt tbl key with
        | Some s when s.Counters.s_issues > 0 && not s.Counters.s_scratch ->
            incr matched;
            (* prefer full-mask issues: partial or sparse masks widen
               every prediction interval to the point of vacuity *)
            let full = s.Counters.s_full_issues > 0 in
            let issues, lanes_sum, lines_sum =
              if full then
                ( s.Counters.s_full_issues,
                  s.Counters.s_full_lanes,
                  s.Counters.s_full_lines )
              else (s.Counters.s_issues, s.Counters.s_lanes, s.Counters.s_lines)
            in
            let fi = float_of_int issues in
            let a = float_of_int lanes_sum /. fi in
            let r = float_of_int lines_sum /. fi in
            let ok =
              if full then begin
                let lanes = lanes_sum / issues in
                let lo, hi =
                  tx_interval ss.ss_class ~lanes ~width:ss.ss_width ~line
                in
                r >= float_of_int lo -. 1e-9 && r <= float_of_int hi +. 1e-9
              end
              else
                (* partial-mask site: only the hard bound is checkable *)
                r <= a +. 1e-9
            in
            if ok then incr agree;
            rows :=
              {
                c_site = ss;
                c_issues = issues;
                c_lanes = a;
                c_lines = r;
                c_full = full;
                c_measured = measured_class ~r ~lanes:a ~width:ss.ss_width ~line;
                c_agree = ok;
              }
              :: !rows
        | _ -> ()
      end)
    sites;
  let by_class =
    List.fold_left
      (fun acc row ->
        let name =
          match row.c_site.ss_class with
          | Strided _ -> "strided"
          | c -> class_name c
        in
        let m, g = try List.assoc name acc with Not_found -> (0, 0) in
        (name, (m + 1, (g + if row.c_agree then 1 else 0)))
        :: List.remove_assoc name acc)
      [] !rows
    |> List.map (fun (n, (m, g)) -> (n, m, g))
    |> List.sort compare
  in
  {
    v_static = !stat;
    v_matched = !matched;
    v_agree = !agree;
    v_rows = List.rev !rows;
    v_by_class = by_class;
  }

(* ------------------------------------------------------------------ *)
(* Shared-memory bank conflicts                                        *)

let banks = 32
let bank_word = 4

(* Worst-case simultaneous-request multiplicity on one bank for a
   32-lane quad of the warp accessing at byte stride [s]. Lanes that
   hit the same word broadcast and do not conflict. *)
let bank_ways ~(stride : int) : int =
  if stride = 0 then 1
  else begin
    let words = Hashtbl.create 32 in
    let per_bank = Array.make banks 0 in
    for lane = 0 to banks - 1 do
      let word = lane * stride / bank_word in
      if not (Hashtbl.mem words word) then begin
        Hashtbl.replace words word ();
        let b = ((word mod banks) + banks) mod banks in
        per_bank.(b) <- per_bank.(b) + 1
      end
    done;
    Array.fold_left max 1 per_bank
  end

(* ------------------------------------------------------------------ *)
(* Per-kernel report (CLI side, over the normalized debug clone)       *)

type site_report = {
  p_site : static_site;
  p_tx : int; (* predicted transactions per full-warp issue *)
  p_bank_ways : int; (* shared space only; 1 elsewhere *)
}

type kernel_report = {
  r_kernel : string;
  r_sites : site_report list;
  r_vregs : int;
  r_sregs : int;
  r_spills : int;
  r_max_pressure_v : int;
  r_max_pressure_s : int;
  r_waves : int; (* resident waves per CU under the register budget *)
  r_max_waves : int;
  r_occupancy : float; (* waves / max_waves *)
  r_divergent_blocks : int;
  r_div_cost : float; (* trip-weighted instructions under divergence *)
  r_findings : Finding.t list;
}

(* Occupancy from the backend's own allocation results. *)
let occupancy_of_mfunc (device : Device.t) (mf : Proteus_backend.Mach.mfunc) :
    int * int =
  let open Proteus_backend in
  let regs = max 1 mf.Mach.vregs in
  let by_regs =
    device.Device.reg_units_per_cu / (regs * device.Device.warp_size)
  in
  let waves = max 1 (min device.Device.max_waves_per_cu by_regs) in
  (waves, device.Device.max_waves_per_cu)

(* Static trip estimate of a loop: header condition [iv CMP bound]
   with a constant bound, a constant phi init and a constant step.
   Unknown shapes estimate 8 iterations. *)
let default_trip = 8.0

let trip_estimate (f : Ir.func) (sx : Addrsym.t) (l : Loopinfo.loop) : float =
  let hb = Ir.find_block f l.Loopinfo.header in
  let header_phis =
    List.filter_map
      (function Ir.IPhi (d, inc) -> Some (d, inc) | _ -> None)
      hb.Ir.insts
  in
  let const_of o = Option.bind (sx.Addrsym.aff o) Affine.to_const in
  match hb.Ir.term with
  | Ir.TCondBr (Ir.Reg cr, _, _) -> (
      match sx.Addrsym.defs.(cr) with
      | Some (Ir.ICmp (_, _, x, y)) -> (
          let iv_of = function
            | Ir.Reg r -> List.assoc_opt r header_phis
            | _ -> None
          in
          let iv, bound =
            match (iv_of x, iv_of y) with
            | Some inc, None -> (Some inc, const_of y)
            | None, Some inc -> (Some inc, const_of x)
            | _ -> (None, None)
          in
          match (iv, bound) with
          | Some inc, Some b ->
              (* init: the incoming from outside the loop body *)
              let init =
                List.find_map
                  (fun (pred, v) ->
                    if Util.Sset.mem pred l.Loopinfo.body then None
                    else const_of v)
                  inc
              in
              let step =
                List.find_map
                  (fun (pred, v) ->
                    if not (Util.Sset.mem pred l.Loopinfo.body) then None
                    else
                      match v with
                      | Ir.Reg r -> (
                          match sx.Addrsym.defs.(r) with
                          | Some (Ir.IBin (_, Ops.Add, _, Ir.Imm k))
                          | Some (Ir.IBin (_, Ops.Add, Ir.Imm k, _)) ->
                              Some (Int64.to_int (Konst.as_int k))
                          | Some (Ir.IBin (_, Ops.Sub, _, Ir.Imm k)) ->
                              Some (-Int64.to_int (Konst.as_int k))
                          | _ -> None)
                      | _ -> None)
                  inc
              in
              (match (init, step) with
              | Some i0, Some s when s <> 0 && (b - i0) * s > 0 ->
                  Float.min 4096.0 (Float.max 1.0 (float_of_int ((b - i0) / s)))
              | _ -> default_trip)
          | _ -> default_trip)
      | _ -> default_trip)
  | _ -> default_trip

let non_dbg_insts (b : Ir.block) =
  List.length
    (List.filter
       (function
         | Ir.ICall (None, c, _) when c = Ir.Intrinsics.dbg_loc -> false
         | _ -> true)
       b.Ir.insts)

(* Divergence cost: instructions in blocks control-dependent on a
   divergent branch, weighted by the trip product of their enclosing
   loops — both sides of a divergent branch serialize, and doing so
   inside a hot loop multiplies the waste. *)
let divergence_cost (f : Ir.func) (sx : Addrsym.t) (li : Loopinfo.t) :
    int * float =
  let u = sx.Addrsym.uni in
  let weight_of label =
    List.fold_left
      (fun w (l : Loopinfo.loop) ->
        if Util.Sset.mem label l.Loopinfo.body then
          Float.min 1e6 (w *. trip_estimate f sx l)
        else w)
      1.0 li.Loopinfo.loops
  in
  let nblocks = ref 0 and cost = ref 0.0 in
  List.iter
    (fun (b : Ir.block) ->
      if
        Util.Sset.mem b.Ir.label sx.Addrsym.live
        && Uniformity.in_divergent_region u b.Ir.label
      then begin
        incr nblocks;
        cost :=
          !cost +. (weight_of b.Ir.label *. float_of_int (non_dbg_insts b))
      end)
    f.Ir.blocks;
  (!nblocks, !cost)

(* Cost thresholds for findings. *)
let occupancy_warn = 0.5
let strided_warn_factor = 4 (* |stride| >= factor * width warns *)

let report_func ?(device = Device.mi250x) (m : Ir.modul) (f : Ir.func)
    ~(mf : Proteus_backend.Mach.mfunc option) : kernel_report =
  let open Proteus_backend in
  let sx = Addrsym.create ~phi_linear:true m f in
  let li = Loopinfo.compute sx.Addrsym.cfg sx.Addrsym.dom in
  let warp = device.Device.warp_size in
  let line = device.Device.l2_line in
  let findings = ref [] in
  let report ?loc ~kind ~severity ~block msg =
    findings :=
      Finding.mk ?loc ~kind ~severity ~func:f.Ir.fname ~block msg :: !findings
  in
  let sites =
    List.map
      (fun ss ->
        let tx =
          predicted_tx ss.ss_class ~lanes:warp ~width:ss.ss_width ~line
        in
        let ways =
          match (ss.ss_space, ss.ss_class) with
          | Sp_shared, (Broadcast | Coalesced) -> 1
          | Sp_shared, Strided s -> bank_ways ~stride:s
          | Sp_shared, Scattered -> 1 (* unknown stride: nothing provable *)
          | _ -> 1
        in
        (match (ss.ss_space, ss.ss_class) with
        | Sp_global, Scattered ->
            report ?loc:ss.ss_loc ~kind:Finding.Coalescing
              ~severity:Finding.Warning ~block:ss.ss_block
              (Printf.sprintf
                 "scattered %s of %s: up to %d transactions per warp access"
                 (kind_name ss.ss_kind) ss.ss_root warp)
        | Sp_global, Strided s when abs s >= strided_warn_factor * ss.ss_width
          ->
            report ?loc:ss.ss_loc ~kind:Finding.Coalescing
              ~severity:Finding.Warning ~block:ss.ss_block
              (Printf.sprintf
                 "strided %s of %s (stride %d bytes): ~%d transactions per \
                  warp access vs %d if coalesced"
                 (kind_name ss.ss_kind) ss.ss_root s tx
                 (max 1 (ceil_div (warp * ss.ss_width) line)))
        | Sp_global, Strided s ->
            report ?loc:ss.ss_loc ~kind:Finding.Coalescing
              ~severity:Finding.Info ~block:ss.ss_block
              (Printf.sprintf "strided %s of %s (stride %d bytes)"
                 (kind_name ss.ss_kind) ss.ss_root s)
        | _ -> ());
        if ways > 1 then
          report ?loc:ss.ss_loc ~kind:Finding.Bank_conflict
            ~severity:Finding.Warning ~block:ss.ss_block
            (Printf.sprintf
               "%d-way shared-memory bank conflict on %s (stride %s bytes)"
               ways ss.ss_root
               (match ss.ss_class with
               | Strided s -> string_of_int s
               | _ -> "?"));
        { p_site = ss; p_tx = tx; p_bank_ways = ways })
      (classify_func m f)
  in
  let vregs, sregs, spills, pv, ps =
    match mf with
    | Some mf ->
        ( mf.Mach.vregs, mf.Mach.sregs, mf.Mach.spill_slots,
          mf.Mach.max_pressure_v, mf.Mach.max_pressure_s )
    | None -> (0, 0, 0, 0, 0)
  in
  let waves, max_waves =
    match mf with
    | Some mf -> occupancy_of_mfunc device mf
    | None -> (device.Device.max_waves_per_cu, device.Device.max_waves_per_cu)
  in
  let occupancy = float_of_int waves /. float_of_int max_waves in
  if occupancy < occupancy_warn then
    report ~kind:Finding.Occupancy ~severity:Finding.Warning
      ~block:(match f.Ir.blocks with b :: _ -> b.Ir.label | [] -> "")
      (Printf.sprintf
         "register pressure limits occupancy to %d/%d waves per CU (%d \
          vector registers%s)"
         waves max_waves vregs
         (if spills > 0 then Printf.sprintf ", %d spill slots" spills else ""));
  let div_blocks, div_cost = divergence_cost f sx li in
  if div_cost >= 256.0 then
    report ~kind:Finding.Divergence ~severity:Finding.Info
      ~block:(match f.Ir.blocks with b :: _ -> b.Ir.label | [] -> "")
      (Printf.sprintf
         "%d blocks execute under divergent control flow (trip-weighted cost \
          ~%.0f instructions)"
         div_blocks div_cost);
  {
    r_kernel = f.Ir.fname;
    r_sites = sites;
    r_vregs = vregs;
    r_sregs = sregs;
    r_spills = spills;
    r_max_pressure_v = pv;
    r_max_pressure_s = ps;
    r_waves = waves;
    r_max_waves = max_waves;
    r_occupancy = occupancy;
    r_divergent_blocks = div_blocks;
    r_div_cost = div_cost;
    r_findings = List.sort Finding.compare !findings;
  }

(* Report every kernel of a Normalize.clone'd module. The occupancy
   estimate compiles a fresh clone through the real O3+backend
   pipeline (dbg.loc markers are stripped there, exactly as the
   driver does), so register counts are the allocator's own. *)
let report_normalized ?(device = Device.mi250x) (m : Ir.modul) :
    kernel_report list =
  let open Proteus_backend in
  let mo = Ir.clone_module m in
  ignore (Proteus_opt.Pipeline.optimize_o3 mo);
  let obj =
    match device.Device.vendor with
    | Device.Amd -> Gcn.compile mo
    | Device.Nvidia ->
        let globals =
          List.filter (fun (g : Ir.gvar) -> not g.Ir.gextern) mo.Ir.globals
        in
        Ptxas.compile ~globals (Ptx.emit mo)
  in
  let mfunc_of sym =
    List.find_opt (fun (k : Mach.mfunc) -> k.Mach.sym = sym) obj.Mach.kernels
  in
  m.Ir.funcs
  |> List.filter (fun (f : Ir.func) ->
         f.Ir.kind = Ir.Kernel && (not f.Ir.is_decl) && f.Ir.blocks <> [])
  |> List.map (fun f -> report_func ~device m f ~mf:(mfunc_of f.Ir.fname))

let report_module ?device (m : Ir.modul) : kernel_report list =
  report_normalized ?device (Normalize.clone m)

(* ------------------------------------------------------------------ *)
(* SpecAdvisor wiring: coalescing-aware address-fold factors           *)

(* Pinning part of an address computation pays more when the access it
   feeds coalesces poorly — those sites dominate memory cost, and a
   constant component is what layout-aware folding needs. All factors
   are >= 1.0: scores only grow, recommendations only widen. *)
let addr_cost_factor = function
  | Broadcast | Coalesced -> 1.0
  | Strided _ -> 1.5
  | Scattered -> 2.0

(* Per-GEP class factors for [f]: the register defined by each GEP
   maps to the coalescing class of its address form. Non-GEP registers
   get the neutral factor. *)
let gep_factors (m : Ir.modul) (f : Ir.func) : int -> float =
  let sx = Addrsym.create ~phi_linear:true m f in
  let table : (int, float) Hashtbl.t = Hashtbl.create 32 in
  Ir.iter_instrs f (fun i ->
      match i with
      | Ir.IGep (d, _, _) ->
          let pi = sx.Addrsym.resolve (Ir.Reg d) in
          let width =
            match Ir.reg_ty f d with
            | Types.TPtr (e, _) -> max 1 (Types.size_of e)
            | _ -> 1
          in
          let cls = classify ~width pi.Addrsym.byte_off in
          Hashtbl.replace table d (addr_cost_factor cls)
      | _ -> ());
  fun r -> match Hashtbl.find_opt table r with Some x -> x | None -> 1.0

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)

let loc_str = function
  | Some (l, c) -> Printf.sprintf "%d:%d" l c
  | None -> "-"

let to_string ?(file = "<source>") (r : kernel_report) : string =
  let b = Buffer.create 512 in
  Buffer.add_string b
    (Printf.sprintf
       "%s: kernel %s: %d memory sites; vregs=%d sregs=%d spills=%d \
        pressure=%d/%d; occupancy %d/%d waves (%.0f%%); divergence cost \
        ~%.0f (%d blocks)\n"
       file r.r_kernel (List.length r.r_sites) r.r_vregs r.r_sregs r.r_spills
       r.r_max_pressure_v r.r_max_pressure_s r.r_waves r.r_max_waves
       (100.0 *. r.r_occupancy) r.r_div_cost r.r_divergent_blocks);
  List.iter
    (fun s ->
      let ss = s.p_site in
      Buffer.add_string b
        (Printf.sprintf
           "  %-7s %-8s %-12s %s  width=%d tx/warp=%d%s  (%%%s#%d @ %s)\n"
           (kind_name ss.ss_kind) (space_name ss.ss_space)
           (class_name ss.ss_class) ss.ss_root ss.ss_width s.p_tx
           (if s.p_bank_ways > 1 then
              Printf.sprintf " banks=%d-way" s.p_bank_ways
            else "")
           ss.ss_block ss.ss_ord (loc_str ss.ss_loc)))
    r.r_sites;
  List.iter
    (fun fd -> Buffer.add_string b ("  " ^ Finding.to_string ~file fd ^ "\n"))
    r.r_findings;
  Buffer.contents b

let findings_of_reports (rs : kernel_report list) : Finding.t list =
  List.concat_map (fun r -> r.r_findings) rs
