(* Experiment harness: runs an app under one of the paper's methods
   (AOT, Proteus with cold/warm persistent cache, Jitify) or analysis
   modes (None/LB/RCF/LB+RCF), and collects the measurements every
   table and figure needs. *)

open Proteus_gpu
open Proteus_runtime
open Proteus_core
open Proteus_driver

type method_ = AOT | Proteus_cold | Proteus_warm | Jitify_m

let method_name = function
  | AOT -> "AOT"
  | Proteus_cold -> "Proteus"
  | Proteus_warm -> "Proteus+$"
  | Jitify_m -> "Jitify"

type measurement = {
  app : string;
  vendor : Device.vendor;
  meth : string;
  e2e_s : float; (* simulated end-to-end *)
  kernel_s : float; (* simulated kernel-only *)
  jit_overhead_s : float;
  cache_bytes : int;
  output : string;
  ok : bool;
  na : bool; (* method not applicable (Jitify on LULESH) *)
  stats : Stats.t option; (* JIT runtime stats (fallbacks, quarantine, ...) *)
}

let na_measurement app vendor meth =
  {
    app; vendor; meth = method_name meth; e2e_s = nan; kernel_s = nan;
    jit_overhead_s = nan; cache_bytes = 0; output = ""; ok = true; na = true;
    stats = None;
  }

(* temp dir for a fresh (cold) persistent cache *)
let fresh_cache_dir () =
  let d =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "proteus-cache-%d-%d" (Unix.getpid ()) (Random.int 1_000_000))
  in
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* compile cache: AOT compilation is deterministic per (app, vendor,
   mode), so reuse executables across measurements *)
let exe_cache : (string, Driver.exe) Hashtbl.t = Hashtbl.create 16

let compile_app (a : App.t) vendor (mode : Driver.mode) : Driver.exe =
  let key =
    Printf.sprintf "%s/%s/%s" a.App.name
      (match vendor with Device.Amd -> "amd" | Device.Nvidia -> "nvidia")
      (match mode with Driver.Aot -> "aot" | Driver.Proteus -> "proteus")
  in
  match Hashtbl.find_opt exe_cache key with
  | Some e -> e
  | None ->
      let e = Driver.compile ~name:a.App.name ~vendor ~mode a.App.source in
      Hashtbl.replace exe_cache key e;
      e

let of_run (a : App.t) vendor meth (r : Driver.run_result) =
  {
    app = a.App.name;
    vendor;
    meth = method_name meth;
    e2e_s = r.Driver.end_to_end_s;
    kernel_s = r.Driver.kernel_time_s;
    jit_overhead_s =
      (match r.Driver.jit with Some s -> s.Stats.jit_overhead_s | None -> 0.0);
    cache_bytes = r.Driver.cache_bytes;
    output = r.Driver.output;
    ok = r.Driver.exit_code = 0 && a.App.check r.Driver.output;
    na = false;
    stats = r.Driver.jit;
  }

(* Run one (app, vendor, method) cell of Table 2. [config] defaults to
   full specialization; pass Config.mode_none etc. for Fig. 6 / Figs
   7-11 modes. *)
let run ?(config = Config.default) (a : App.t) (vendor : Device.vendor)
    (meth : method_) : measurement =
  match meth with
  | AOT ->
      let exe = compile_app a vendor Driver.Aot in
      of_run a vendor meth (Driver.run exe)
  | Proteus_cold ->
      let exe = compile_app a vendor Driver.Proteus in
      let dir = fresh_cache_dir () in
      let config = { config with Config.persistent_dir = Some dir } in
      let r = Driver.run ~config exe in
      let m = of_run a vendor meth r in
      rm_rf dir;
      m
  | Proteus_warm ->
      let exe = compile_app a vendor Driver.Proteus in
      let dir = fresh_cache_dir () in
      let config = { config with Config.persistent_dir = Some dir } in
      (* populate *)
      let _warmup = Driver.run ~config exe in
      (* measured run starts with a warm persistent cache *)
      let r = Driver.run ~config exe in
      let m = of_run a vendor meth r in
      rm_rf dir;
      m
  | Jitify_m ->
      if vendor <> Device.Nvidia then na_measurement a.App.name vendor meth
      else if not a.App.supports_jitify then na_measurement a.App.name vendor meth
      else begin
        let exe = compile_app a vendor Driver.Proteus in
        let device = Device.by_vendor vendor in
        let rt = Gpurt.create device in
        let _lm = Gpurt.load_module rt exe.Driver.fatbin in
        let jt = Proteus_jitify.Jitify.create rt in
        let prog = Proteus_jitify.Jitify.program ~name:a.App.name a.App.source in
        let extra h name args = Proteus_jitify.Jitify.host_hook jt prog h name args in
        let result = Hostexec.run ~extra rt exe.Driver.host in
        {
          app = a.App.name;
          vendor;
          meth = method_name meth;
          e2e_s = result.Hostexec.end_to_end_s;
          kernel_s = Gpurt.total_kernel_time rt;
          jit_overhead_s = jt.Proteus_jitify.Jitify.compile_overhead_s;
          cache_bytes = 0;
          output = result.Hostexec.output;
          ok = result.Hostexec.exit_code = 0 && a.App.check result.Hostexec.output;
          na = false;
          stats = None;
        }
      end

(* ---------------------------------------------------------------- *)
(* Per-kernel analysis (Figs 7-11): run under one specialization mode
   and aggregate counters per kernel symbol. *)

type kernel_profile = {
  ksym : string;
  mode : string;
  duration_s : float; (* mean per launch *)
  launches : int;
  counters : Counters.t; (* aggregated *)
  vregs : int;
  sregs : int;
  spill_slots : int;
  ipc : float;
  valu_busy : float;
  stall_frac : float;
  l2_hit : float;
}

type analysis_mode = M_aot | M_none | M_lb | M_rcf | M_lb_rcf

let mode_name = function
  | M_aot -> "AOT"
  | M_none -> "None"
  | M_lb -> "LB"
  | M_rcf -> "RCF"
  | M_lb_rcf -> "LB+RCF"

let config_of_mode = function
  | M_aot | M_none -> Config.mode_none
  | M_lb -> Config.mode_lb
  | M_rcf -> Config.mode_rcf
  | M_lb_rcf -> Config.mode_lb_rcf

let analyze (a : App.t) (vendor : Device.vendor) (mode : analysis_mode) :
    kernel_profile list =
  let driver_mode = match mode with M_aot -> Driver.Aot | _ -> Driver.Proteus in
  let exe = compile_app a vendor driver_mode in
  let config = config_of_mode mode in
  let r = Driver.run ~config exe in
  List.map
    (fun sym ->
      let profs = Gpurt.profiles_for r.Driver.rt sym in
      let agg = Counters.create () in
      List.iter (fun (p : Gpurt.profile) -> Counters.add agg p.Gpurt.pcounters) profs;
      let n = max 1 (List.length profs) in
      let total = List.fold_left (fun acc p -> acc +. p.Gpurt.preport.Timing.duration_s) 0.0 profs in
      let mean_of f =
        List.fold_left (fun acc p -> acc +. f p) 0.0 profs /. float_of_int n
      in
      {
        ksym = sym;
        mode = mode_name mode;
        duration_s = total /. float_of_int n;
        launches = List.length profs;
        counters = agg;
        vregs =
          (match profs with p :: _ -> p.Gpurt.pvregs | [] -> 0);
        sregs = (match profs with p :: _ -> p.Gpurt.psregs | [] -> 0);
        spill_slots = (match profs with p :: _ -> p.Gpurt.pspills | [] -> 0);
        ipc = mean_of (fun p -> p.Gpurt.preport.Timing.ipc);
        valu_busy = mean_of (fun p -> p.Gpurt.preport.Timing.valu_busy);
        stall_frac = mean_of (fun p -> p.Gpurt.preport.Timing.stall_frac);
        l2_hit = Counters.l2_hit_ratio agg;
      })
    a.App.kernels

let all_modes = [ M_aot; M_none; M_lb; M_rcf; M_lb_rcf ]
