(* Deterministic seeding for the qcheck property suites.

   Every property runs from a fixed seed by default so test results are
   reproducible; set PROTEUS_QCHECK_SEED to explore other seeds (CI can
   rotate it) or to replay a failure. The active seed is printed when a
   property fails. *)

let seed =
  match Sys.getenv_opt "PROTEUS_QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "PROTEUS_QCHECK_SEED=%S is not an integer\n%!" s;
          exit 2)
  | None -> 0x5eed

let qtest cell =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| seed |]) cell
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf
          "[qcheck] %s failed under seed %d (replay with PROTEUS_QCHECK_SEED=%d)\n%!"
          name seed seed;
        raise e )
