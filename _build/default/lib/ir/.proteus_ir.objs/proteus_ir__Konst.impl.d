lib/ir/konst.ml: Float Int64 Ops Printf Proteus_support Types Util
