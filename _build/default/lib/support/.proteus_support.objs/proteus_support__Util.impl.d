lib/support/util.ml: Array Buffer Char Format Int Int32 Int64 List Map Printf Set String
