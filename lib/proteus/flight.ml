(* Single-flight execution groups: concurrent calls that share a key
   coalesce onto one execution of the work function - the first caller
   (the leader) runs it, every other caller (a follower) blocks until
   the leader publishes its result, then shares it. The JIT uses this
   to guarantee at most one in-flight compile per specialization key
   across the domain pool: N identical concurrent launches cost one
   compile, not N.

   A group closes when its leader finishes: callers arriving after
   that start a fresh flight, which is correct for the JIT because the
   leader's artifact is in the code cache by then (the leader re-checks
   the cache inside its flight - double-checked locking - so a fresh
   flight after a completed one finds a hit and compiles nothing).

   A leader's exception propagates to every follower of that flight:
   if the compile failed, every coalesced launch sees the same failure
   and takes the same contained AOT fallback.

   Flights are keyed by (key, tier), not key alone. Tiered compilation
   can have two compiles of the same specialization key legitimately
   in flight at different optimization tiers, and a caller wanting the
   O3 artifact must not coalesce onto a leader producing the cheap
   tier-0 one - it would be handed a lower tier than it asked for and
   cache it as if it were the higher. Callers that predate tiering
   pass tier 0 implicitly and behave exactly as before. *)

type 'a flight = {
  mutable outcome : ('a, exn) result option; (* None while in flight *)
}

type 'a t = {
  mu : Mutex.t;
  closed : Condition.t; (* signalled whenever any flight closes *)
  inflight : (string * int, 'a flight) Hashtbl.t;
  mutable leads : int; (* calls that executed the work *)
  mutable suppressed : int; (* calls that coalesced onto a leader *)
}

let create () =
  {
    mu = Mutex.create ();
    closed = Condition.create ();
    inflight = Hashtbl.create 8;
    leads = 0;
    suppressed = 0;
  }

(* Which role a completed call played; the JIT accounts leaders and
   followers differently (a follower pays no compile cost). *)
type 'a outcome = Led of 'a | Coalesced of 'a

let run (t : 'a t) ~(key : string) ?(tier = 0) (f : unit -> 'a) : 'a outcome =
  let key = (key, tier) in
  Mutex.lock t.mu;
  match Hashtbl.find_opt t.inflight key with
  | None ->
      (* leader: publish the flight, run the work unlocked, close *)
      let fl = { outcome = None } in
      Hashtbl.replace t.inflight key fl;
      t.leads <- t.leads + 1;
      Mutex.unlock t.mu;
      let res = try Ok (f ()) with e -> Error e in
      Mutex.lock t.mu;
      fl.outcome <- Some res;
      Hashtbl.remove t.inflight key;
      Condition.broadcast t.closed;
      Mutex.unlock t.mu;
      (match res with Ok v -> Led v | Error e -> raise e)
  | Some fl ->
      (* follower: wait for this flight (not any later one) to close *)
      t.suppressed <- t.suppressed + 1;
      let rec await () =
        match fl.outcome with
        | Some r -> r
        | None ->
            Condition.wait t.closed t.mu;
            await ()
      in
      let r = await () in
      Mutex.unlock t.mu;
      (match r with Ok v -> Coalesced v | Error e -> raise e)

let leads t = t.leads
let suppressed t = t.suppressed

(* Flights currently open (leader still compiling). The serve loop
   polls this for its load report; it is advisory — the value can be
   stale by the time the caller reads it. *)
let inflight t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.inflight in
  Mutex.unlock t.mu;
  n
