test/test_jitify.mli:
