(* The Kernel-C sources of the bundled examples, shared between the
   example executables (examples/), the static-analysis suite and the
   @analyze alias — so the programs users are pointed at first are the
   same ones the analyzer gate keeps clean. *)

type t = { name : string; source : string }

let quickstart =
  {
    name = "quickstart";
    source =
      {|
// daxpy: specialize on the scaling factor a (arg 1) and size n (arg 4)
__global__ __attribute__((annotate("jit", 1, 4)))
void daxpy(double a, double* x, double* y, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) { y[i] = a * x[i] + y[i]; }
}

int main() {
  int n = 4096;
  long bytes = n * 8;
  double* hx = (double*)malloc(bytes);
  double* hy = (double*)malloc(bytes);
  for (int i = 0; i < n; i++) { hx[i] = (double)i; hy[i] = 1.0; }
  double* dx = (double*)cudaMalloc(bytes);
  double* dy = (double*)cudaMalloc(bytes);
  cudaMemcpyHtoD(dx, hx, bytes);
  cudaMemcpyHtoD(dy, hy, bytes);
  for (int rep = 0; rep < 10; rep++) {
    daxpy<<<(n + 255) / 256, 256>>>(2.5, dx, dy, n);
  }
  cudaDeviceSynchronize();
  cudaMemcpyDtoH(hy, dy, bytes);
  double sum = 0.0;
  for (int i = 0; i < n; i++) { sum = sum + hy[i]; }
  printf("daxpy checksum=%g (expect %g)\n",
         sum, (double)n + 25.0 * 0.5 * (double)n * (double)(n - 1));
  return 0;
}
|};
  }

let adam_training =
  {
    name = "adam_training";
    source =
      {|
__global__ __attribute__((annotate("jit", 5, 6, 7, 8, 9)))
void adam_step(float* p, float* m, float* v, float* g,
               float b1, float b2, float eps, float lr, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    float gi = g[i];
    float mi = b1 * m[i] + (1.0f - b1) * gi;
    float vi = b2 * v[i] + (1.0f - b2) * gi * gi;
    p[i] = p[i] - lr * mi / (sqrtf(vi) + eps);
    m[i] = mi;
    v[i] = vi;
  }
}

__global__
void fake_grad(float* g, float* p, int n, int epoch) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    // gradient of a quadratic bowl, perturbed per epoch
    g[i] = 2.0f * (p[i] - 0.5f) + 0.01f * (float)((i + epoch) % 7 - 3);
  }
}

int main() {
  int n = 8192;
  long bytes = n * 4;
  float* hp = (float*)malloc(bytes);
  for (int i = 0; i < n; i++) { hp[i] = (float)(i % 100) * 0.01f; }
  float* dp = (float*)cudaMalloc(bytes);
  float* dm = (float*)cudaMalloc(bytes);
  float* dv = (float*)cudaMalloc(bytes);
  float* dg = (float*)cudaMalloc(bytes);
  cudaMemcpyHtoD(dp, hp, bytes);
  for (int epoch = 0; epoch < 30; epoch++) {
    fake_grad<<<(n + 127) / 128, 128>>>(dg, dp, n, epoch);
    adam_step<<<(n + 127) / 128, 128>>>(dp, dm, dv, dg,
                                        0.9f, 0.999f, 1e-8f, 0.05f, n);
  }
  cudaDeviceSynchronize();
  cudaMemcpyDtoH(hp, dp, bytes);
  double dist = 0.0;
  for (int i = 0; i < n; i++) {
    double d = hp[i] - 0.5;
    dist = dist + d * d;
  }
  printf("adam-training final distance=%g\n", dist / n);
  return 0;
}
|};
  }

let heat_stencil =
  {
    name = "heat_stencil";
    source =
      {|
__global__ __attribute__((annotate("jit", 4, 5, 6)))
void heat(double* u0, double* u1, double* out, int n, int inner, double alpha) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i > 0 && i < n - 1) {
    double left = u0[i - 1];
    double mid = u0[i];
    double right = u0[i + 1];
    // micro-stepping: [inner] sub-steps per kernel launch
    for (int s = 0; s < inner; s++) {
      double lap = left - 2.0 * mid + right;
      double next = mid + alpha * lap;
      left = left + alpha * (mid - left) * 0.5;
      right = right + alpha * (mid - right) * 0.5;
      mid = next;
    }
    u1[i] = mid;
    out[i] = mid;
  }
}

int main() {
  int n = 8192;
  long bytes = n * 8;
  double* h = (double*)malloc(bytes);
  for (int i = 0; i < n; i++) {
    h[i] = (i > n / 2 - 64 && i < n / 2 + 64) ? 100.0 : 0.0;
  }
  double* d0 = (double*)cudaMalloc(bytes);
  double* d1 = (double*)cudaMalloc(bytes);
  double* dout = (double*)cudaMalloc(bytes);
  cudaMemcpyHtoD(d0, h, bytes);
  for (int t = 0; t < 20; t++) {
    heat<<<(n + 127) / 128, 128>>>(d0, d1, dout, n, 8, 0.1);
    double* tmp = d0; d0 = d1; d1 = tmp;
  }
  cudaDeviceSynchronize();
  cudaMemcpyDtoH(h, dout, bytes);
  double total = 0.0;
  for (int i = 0; i < n; i++) { total = total + h[i]; }
  printf("heat total=%g\n", total);
  return 0;
}
|};
  }

let montecarlo_pi =
  {
    name = "montecarlo_pi";
    source =
      {|
__global__ __attribute__((annotate("jit", 2, 3)))
void mc_pi(float* hits, int samples_per_thread, int seed) {
  int gid = blockIdx.x * blockDim.x + threadIdx.x;
  int rng = seed + gid * 2654435761;
  int inside = 0;
  for (int s = 0; s < samples_per_thread; s++) {
    rng = rng * 1103515245 + 12345;
    float x = (float)((rng >> 8) & 65535) / 65536.0f;
    rng = rng * 1103515245 + 12345;
    float y = (float)((rng >> 8) & 65535) / 65536.0f;
    if (x * x + y * y < 1.0f) { inside = inside + 1; }
  }
  atomicAdd(hits, (float)inside);
}
|};
  }

let all = [ quickstart; adam_training; heat_stencil; montecarlo_pi ]

let find name =
  match List.find_opt (fun e -> e.name = name) all with
  | Some e -> e
  | None ->
      Proteus_support.Util.failf "unknown example %s (have: %s)" name
        (String.concat ", " (List.map (fun e -> e.name) all))
