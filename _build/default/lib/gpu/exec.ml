(* SIMT executor: runs machine code warp by warp in lockstep with an
   active mask and immediate-postdominator reconvergence. Both sides of
   a divergent branch issue for the whole warp (serialised), memory
   accesses coalesce into cache lines through the L2 model, and scratch
   (spill / local-array) traffic goes through the same hierarchy. *)

open Proteus_support
open Proteus_ir
open Proteus_backend

type kernel_env = {
  mem : Gmem.t;
  l2 : L2cache.t;
  device : Device.t;
  symbols : string -> int64; (* device global addresses *)
  args : Konst.t array;
  grid : int * int * int;
  block : int * int * int;
  scratch_base : int64; (* arena for per-thread frames *)
  thread_frame : int; (* bytes per thread (frame + spill slots) *)
  counters : Counters.t;
}

(* Per-warp register state: parallel float/int banks, scalar and vector. *)
type wstate = {
  lanes : int;
  vi : int64 array; (* vregs * lanes *)
  vf : float array;
  si : int64 array;
  sf : float array;
  spi : int64 array; (* spill slots * lanes *)
  spf : float array;
  sspi : int64 array; (* scalar spill slots *)
  sspf : float array;
  first_thread : int; (* global linear id of lane 0 *)
  block_id : int * int * int;
  base_tid : int * int * int; (* thread id of lane 0 within the block *)
}

let popcount (m : int64) =
  let rec go m acc = if Int64.equal m 0L then acc
    else go (Int64.shift_right_logical m 1) (acc + Int64.to_int (Int64.logand m 1L))
  in
  go m 0

let lane_active mask lane =
  not (Int64.equal (Int64.logand mask (Int64.shift_left 1L lane)) 0L)

exception Trap of string

let is_float_ty = function Types.TFloat _ -> true | _ -> false

let norm_ibits bits v = Konst.norm_int v bits

let ibits_of = function
  | Types.TBool -> 1
  | Types.TInt b -> b
  | Types.TPtr _ -> 64
  | t -> Util.failf "Exec.ibits_of: %s" (Types.to_string t)

(* ------------------------------------------------------------------ *)

(* Per-kernel preparation shared by all warps of a launch: block map
   and reconvergence points. *)
type prep = { pblocks : (string, Mach.mblock) Hashtbl.t; pipdom : string Util.Smap.t }

let prepare (f : Mach.mfunc) : prep =
  let pblocks : (string, Mach.mblock) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (b : Mach.mblock) -> Hashtbl.replace pblocks b.Mach.mlab b) f.Mach.blocks;
  let labels = List.map (fun (b : Mach.mblock) -> b.Mach.mlab) f.Mach.blocks in
  let succs l = Mach.successors (Hashtbl.find pblocks l).Mach.term in
  { pblocks; pipdom = Uniformity.ipostdoms labels succs }

let run_warp (env : kernel_env) (f : Mach.mfunc) (prep : prep) (w : wstate)
    (init_mask : int64) : unit =
  let c = env.counters in
  let lanes = w.lanes in
  let block lab =
    match Hashtbl.find_opt prep.pblocks lab with
    | Some b -> b
    | None -> raise (Trap ("no block " ^ lab))
  in
  let ipdom = prep.pipdom in
  (* ---- register access ---- *)
  let rd_vi r lane = w.vi.((r * lanes) + lane) in
  let rd_vf r lane = w.vf.((r * lanes) + lane) in
  let wr_vi r lane v = w.vi.((r * lanes) + lane) <- v in
  let wr_vf r lane v = w.vf.((r * lanes) + lane) <- v in
  let src_i (s : Mach.msrc) lane : int64 =
    match s with
    | Mach.Rs { Mach.rid; rcls = Mach.CV } -> rd_vi rid lane
    | Mach.Rs { Mach.rid; rcls = Mach.CS } -> w.si.(rid)
    | Mach.Ki k -> Konst.as_int k
    | Mach.Gs g -> env.symbols g
  in
  let src_f (s : Mach.msrc) lane : float =
    match s with
    | Mach.Rs { Mach.rid; rcls = Mach.CV } -> rd_vf rid lane
    | Mach.Rs { Mach.rid; rcls = Mach.CS } -> w.sf.(rid)
    | Mach.Ki k -> Konst.as_float k
    | Mach.Gs _ -> raise (Trap "float read of symbol")
  in
  let dst_i (d : Mach.reg) lane v =
    match d.Mach.rcls with
    | Mach.CV -> wr_vi d.Mach.rid lane v
    | Mach.CS -> w.si.(d.Mach.rid) <- v
  in
  let dst_f (d : Mach.reg) lane v =
    match d.Mach.rcls with
    | Mach.CV -> wr_vf d.Mach.rid lane v
    | Mach.CS -> w.sf.(d.Mach.rid) <- v
  in
  let write_konst (d : Mach.reg) lane (k : Konst.t) =
    match k with
    | Konst.KFloat (v, _) -> dst_f d lane v
    | Konst.KBool b -> dst_i d lane (if b then 1L else 0L)
    | Konst.KInt (v, _) -> dst_i d lane v
    | Konst.KNull -> dst_i d lane 0L
  in
  (* thread coordinates *)
  let gx, gy, gz = env.grid and bx, by, bz = env.block in
  ignore (gx, gy, gz, bx, by, bz);
  let btx, bty, btz = w.base_tid in
  let tid_of lane =
    (* lanes advance along x *)
    let linear = btx + lane in
    let x = linear mod bx in
    let rest = linear / bx in
    let y = bty + (rest mod by) in
    let z = btz + (rest / by) in
    (x, y, z)
  in
  let bix, biy, biz = w.block_id in
  let query_val q lane : int64 =
    let x, y, z = tid_of lane in
    let v =
      match q with
      | "gpu.tid.x" -> x
      | "gpu.tid.y" -> y
      | "gpu.tid.z" -> z
      | "gpu.ctaid.x" -> bix
      | "gpu.ctaid.y" -> biy
      | "gpu.ctaid.z" -> biz
      | "gpu.ntid.x" -> bx
      | "gpu.ntid.y" -> by
      | "gpu.ntid.z" -> bz
      | "gpu.nctaid.x" -> gx
      | "gpu.nctaid.y" -> gy
      | "gpu.nctaid.z" -> gz
      | q -> raise (Trap ("unknown query " ^ q))
    in
    Int64.of_int v
  in
  (* memory access with coalescing; returns unit, updates counters *)
  let touch_lines addrs =
    (* unique cache lines among lane addresses *)
    let line = env.device.Device.l2_line in
    let seen = Hashtbl.create 8 in
    List.iter
      (fun a ->
        let la = Int64.to_int a / line in
        if not (Hashtbl.mem seen la) then begin
          Hashtbl.replace seen la ();
          c.Counters.mem_lines <- c.Counters.mem_lines + 1;
          if L2cache.access env.l2 a then c.Counters.l2_hits <- c.Counters.l2_hits + 1
          else c.Counters.l2_misses <- c.Counters.l2_misses + 1
        end)
      addrs
  in
  (* Spill slots are lane-interleaved within a warp's scratch region
     (hardware swizzles scratch so per-lane spill traffic coalesces). *)
  let scratch_addr lane slot =
    Int64.add env.scratch_base
      (Int64.of_int
         ((w.first_thread * env.thread_frame)
         + (lanes * f.Mach.frame)
         + (slot * 8 * lanes)
         + (lane * 8)))
  in
  (* ---- main instruction dispatch ---- *)
  let exec_instr (i : Mach.minstr) (mask : int64) =
    let act = popcount mask in
    let for_lanes fn =
      for lane = 0 to lanes - 1 do
        if lane_active mask lane then fn lane
      done
    in
    let scalar_dst =
      match i.Mach.dst with Some { Mach.rcls = Mach.CS; _ } -> true | None -> false | _ -> false
    in
    let count_alu () =
      c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
      if scalar_dst then c.Counters.salu <- c.Counters.salu + 1
      else begin
        c.Counters.valu_warp <- c.Counters.valu_warp + 1;
        c.Counters.valu_thread <- c.Counters.valu_thread + act
      end
    in
    match i.Mach.op with
    | Mach.Obin (op, ty) ->
        count_alu ();
        (* divisions issue through the long-latency pipe like
           transcendentals on both architectures *)
        (match op with
        | Ops.FDiv | Ops.FRem | Ops.SDiv | Ops.SRem ->
            c.Counters.math_warp <- c.Counters.math_warp + 1
        | _ -> ());
        let d = Option.get i.Mach.dst in
        let a, b = (List.nth i.Mach.srcs 0, List.nth i.Mach.srcs 1) in
        if is_float_ty ty then begin
          let bits = match ty with Types.TFloat b -> b | _ -> 64 in
          let apply x y =
            let open Ops in
            match op with
            | FAdd -> x +. y
            | FSub -> x -. y
            | FMul -> x *. y
            | FDiv -> x /. y
            | FRem -> Float.rem x y
            | FMin -> if x <= y then x else y
            | FMax -> if x >= y then x else y
            | _ -> raise (Trap "int binop on float type")
          in
          let round = if bits = 32 then Util.to_f32 else fun x -> x in
          if scalar_dst then dst_f d 0 (round (apply (src_f a 0) (src_f b 0)))
          else for_lanes (fun l -> dst_f d l (round (apply (src_f a l) (src_f b l))))
        end
        else begin
          let bits = ibits_of ty in
          let apply x y =
            Konst.as_int (Konst.binop op (Konst.kint ~bits x) (Konst.kint ~bits y))
          in
          if scalar_dst then dst_i d 0 (apply (src_i a 0) (src_i b 0))
          else for_lanes (fun l -> dst_i d l (apply (src_i a l) (src_i b l)))
        end
    | Mach.Ocmp (op, ty) ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        let a, b = (List.nth i.Mach.srcs 0, List.nth i.Mach.srcs 1) in
        let cmp_i x y =
          let cv = Int64.compare x y in
          let open Ops in
          match op with
          | CEq -> cv = 0
          | CNe -> cv <> 0
          | CLt -> cv < 0
          | CLe -> cv <= 0
          | CGt -> cv > 0
          | CGe -> cv >= 0
        in
        let cmp_f x y =
          let open Ops in
          match op with
          | CEq -> x = y
          | CNe -> x <> y
          | CLt -> x < y
          | CLe -> x <= y
          | CGt -> x > y
          | CGe -> x >= y
        in
        if is_float_ty ty then
          if scalar_dst then dst_i d 0 (if cmp_f (src_f a 0) (src_f b 0) then 1L else 0L)
          else
            for_lanes (fun l -> dst_i d l (if cmp_f (src_f a l) (src_f b l) then 1L else 0L))
        else begin
          let bits = ibits_of ty in
          let n v = norm_ibits bits v in
          if scalar_dst then
            dst_i d 0 (if cmp_i (n (src_i a 0)) (n (src_i b 0)) then 1L else 0L)
          else
            for_lanes (fun l ->
                dst_i d l (if cmp_i (n (src_i a l)) (n (src_i b l)) then 1L else 0L))
        end
    | Mach.Osel ty ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        let cnd, a, b =
          (List.nth i.Mach.srcs 0, List.nth i.Mach.srcs 1, List.nth i.Mach.srcs 2)
        in
        let go l =
          let take = not (Int64.equal (src_i cnd l) 0L) in
          if is_float_ty ty then dst_f d l (if take then src_f a l else src_f b l)
          else dst_i d l (if take then src_i a l else src_i b l)
        in
        if scalar_dst then go 0 else for_lanes go
    | Mach.Ocast (op, dty, sty) ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        let a = List.nth i.Mach.srcs 0 in
        let go l =
          match (op, is_float_ty sty, is_float_ty dty) with
          | Ops.SiToFp, false, true ->
              let bits = ibits_of sty in
              let v = Int64.to_float (norm_ibits bits (src_i a l)) in
              dst_f d l (if dty = Types.TFloat 32 then Util.to_f32 v else v)
          | Ops.FpToSi, true, false ->
              dst_i d l (norm_ibits (ibits_of dty) (Int64.of_float (src_f a l)))
          | Ops.FpExt, true, true -> dst_f d l (src_f a l)
          | Ops.FpTrunc, true, true -> dst_f d l (Util.to_f32 (src_f a l))
          | (Ops.Zext | Ops.Sext | Ops.Trunc), false, false ->
              let sbits = ibits_of sty and dbits = ibits_of dty in
              let v = src_i a l in
              let v =
                match op with
                | Ops.Zext ->
                    if sbits >= 64 then v
                    else Int64.logand v (Int64.sub (Int64.shift_left 1L sbits) 1L)
                | Ops.Sext -> norm_ibits sbits v
                | _ -> v
              in
              dst_i d l (norm_ibits dbits v)
          | Ops.Bitcast, _, _ ->
              if is_float_ty dty && is_float_ty sty then dst_f d l (src_f a l)
              else if is_float_ty dty then dst_f d l (Int64.float_of_bits (src_i a l))
              else if is_float_ty sty then dst_i d l (Int64.bits_of_float (src_f a l))
              else dst_i d l (src_i a l)
          | _ -> raise (Trap "bad cast")
        in
        if scalar_dst then go 0 else for_lanes go
    | Mach.Omov ty ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        let a = List.nth i.Mach.srcs 0 in
        let go l = if is_float_ty ty then dst_f d l (src_f a l) else dst_i d l (src_i a l) in
        if scalar_dst then go 0 else for_lanes go
    | Mach.Old (space, ty) ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        let d = Option.get i.Mach.dst in
        let p = List.nth i.Mach.srcs 0 in
        if scalar_dst then begin
          (* uniform scalar fetch *)
          c.Counters.smem <- c.Counters.smem + 1;
          let addr = src_i p 0 in
          touch_lines [ addr ];
          write_konst d 0 (Gmem.read env.mem ty addr)
        end
        else begin
          c.Counters.vmem_warp <- c.Counters.vmem_warp + 1;
          c.Counters.vmem_thread <- c.Counters.vmem_thread + act;
          (if space = Mach.SScratch then
             c.Counters.scratch_ld <- c.Counters.scratch_ld + 1);
          let addrs = ref [] in
          for_lanes (fun l ->
              let addr = src_i p l in
              addrs := addr :: !addrs;
              write_konst d l (Gmem.read env.mem ty addr));
          touch_lines !addrs
        end
    | Mach.Ost (space, ty) ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.vmem_warp <- c.Counters.vmem_warp + 1;
        c.Counters.vmem_thread <- c.Counters.vmem_thread + act;
        if space = Mach.SScratch then c.Counters.scratch_st <- c.Counters.scratch_st + 1;
        let v = List.nth i.Mach.srcs 0 and p = List.nth i.Mach.srcs 1 in
        let addrs = ref [] in
        for_lanes (fun l ->
            let addr = src_i p l in
            addrs := addr :: !addrs;
            let k =
              if is_float_ty ty then
                Konst.KFloat (src_f v l, match ty with Types.TFloat b -> b | _ -> 64)
              else Konst.kint ~bits:(ibits_of ty) (src_i v l)
            in
            Gmem.write env.mem ty addr k);
        touch_lines !addrs
    | Mach.Oquery q ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        if scalar_dst then dst_i d 0 (query_val q 0)
        else for_lanes (fun l -> dst_i d l (query_val q l))
    | Mach.Omath (name, ty) ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.math_warp <- c.Counters.math_warp + 1;
        if not scalar_dst then c.Counters.valu_thread <- c.Counters.valu_thread + act;
        let d = Option.get i.Mach.dst in
        let bits = match ty with Types.TFloat b -> b | _ -> 64 in
        let round = if bits = 32 then Util.to_f32 else fun x -> x in
        let go l =
          let v =
            match i.Mach.srcs with
            | [ a ] -> Ir.Intrinsics.eval_math_unary name (src_f a l)
            | [ a; b ] -> Ir.Intrinsics.eval_math_binary name (src_f a l) (src_f b l)
            | [ a; b; cc ] when name = "math.fma" ->
                (src_f a l *. src_f b l) +. src_f cc l
            | _ -> raise (Trap ("math arity " ^ name))
          in
          dst_f d l (round v)
        in
        if scalar_dst then go 0 else for_lanes go
    | Mach.Oatomic name ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.atomics <- c.Counters.atomics + 1;
        c.Counters.vmem_thread <- c.Counters.vmem_thread + act;
        let p = List.nth i.Mach.srcs 0 and v = List.nth i.Mach.srcs 1 in
        let addrs = ref [] in
        for_lanes (fun l ->
            let addr = src_i p l in
            addrs := addr :: !addrs;
            match name with
            | "gpu.atomic.add.f32" ->
                let old = Gmem.read_f32 env.mem addr in
                Gmem.write_f32 env.mem addr (Util.to_f32 (old +. src_f v l));
                (match i.Mach.dst with Some d -> dst_f d l old | None -> ())
            | "gpu.atomic.add.f64" ->
                let old = Gmem.read_f64 env.mem addr in
                Gmem.write_f64 env.mem addr (old +. src_f v l);
                (match i.Mach.dst with Some d -> dst_f d l old | None -> ())
            | "gpu.atomic.add.i32" ->
                let old = Gmem.read_i32 env.mem addr in
                Gmem.write_i32 env.mem addr (Int32.add old (Int64.to_int32 (src_i v l)));
                (match i.Mach.dst with Some d -> dst_i d l (Int64.of_int32 old) | None -> ())
            | n -> raise (Trap ("atomic " ^ n)));
        touch_lines !addrs
    | Mach.Obarrier -> c.Counters.warp_instrs <- c.Counters.warp_instrs + 1
    | Mach.Oframe ->
        count_alu ();
        let d = Option.get i.Mach.dst in
        let off =
          match i.Mach.srcs with [ Mach.Ki k ] -> Konst.as_int k | _ -> 0L
        in
        (* frames pack per-lane at the head of the warp's scratch
           region; lane-interleaved spill slots follow (scratch_addr) *)
        for_lanes (fun l ->
            let base =
              Int64.add env.scratch_base
                (Int64.of_int
                   ((w.first_thread * env.thread_frame) + (l * f.Mach.frame)))
            in
            dst_i d l (Int64.add base off))
    | Mach.Oarg k ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.smem <- c.Counters.smem + 1;
        let d = Option.get i.Mach.dst in
        let v = env.args.(k) in
        if scalar_dst then write_konst d 0 v
        else for_lanes (fun l -> write_konst d l v)
    | Mach.Ospill_st slot ->
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.spill_st <- c.Counters.spill_st + 1;
        let v = List.nth i.Mach.srcs 0 in
        (match v with
        | Mach.Rs { Mach.rcls = Mach.CS; rid } ->
            c.Counters.smem <- c.Counters.smem + 1;
            w.sspi.(slot) <- w.si.(rid);
            w.sspf.(slot) <- w.sf.(rid)
        | Mach.Rs { Mach.rcls = Mach.CV; rid } ->
            c.Counters.scratch_st <- c.Counters.scratch_st + 1;
            c.Counters.vmem_thread <- c.Counters.vmem_thread + act;
            let addrs = ref [] in
            for_lanes (fun l ->
                addrs := scratch_addr l slot :: !addrs;
                w.spi.((slot * lanes) + l) <- rd_vi rid l;
                w.spf.((slot * lanes) + l) <- rd_vf rid l);
            touch_lines !addrs
        | _ -> raise (Trap "spill of non-register"))
    | Mach.Ospill_ld slot -> (
        c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
        c.Counters.spill_ld <- c.Counters.spill_ld + 1;
        let d = Option.get i.Mach.dst in
        match d.Mach.rcls with
        | Mach.CS ->
            c.Counters.smem <- c.Counters.smem + 1;
            w.si.(d.Mach.rid) <- w.sspi.(slot);
            w.sf.(d.Mach.rid) <- w.sspf.(slot)
        | Mach.CV ->
            c.Counters.scratch_ld <- c.Counters.scratch_ld + 1;
            c.Counters.vmem_thread <- c.Counters.vmem_thread + act;
            let addrs = ref [] in
            for_lanes (fun l ->
                addrs := scratch_addr l slot :: !addrs;
                wr_vi d.Mach.rid l w.spi.((slot * lanes) + l);
                wr_vf d.Mach.rid l w.spf.((slot * lanes) + l));
            touch_lines !addrs)
  in
  (* ---- SIMT control flow ---- *)
  let fuel = ref 1_000_000_000 in
  let rec run (label : string) (mask : int64) (stop : string) : int64 =
    if label = stop || Int64.equal mask 0L then mask
    else begin
      let b = block label in
      List.iter
        (fun i ->
          decr fuel;
          if !fuel <= 0 then raise (Trap "out of fuel");
          exec_instr i mask)
        b.Mach.code;
      match b.Mach.term with
      | Mach.Tbr l -> run l mask stop
      | Mach.Tret -> 0L
      | Mach.Tcbr (cnd, t, e) ->
          c.Counters.branches <- c.Counters.branches + 1;
          c.Counters.warp_instrs <- c.Counters.warp_instrs + 1;
          let tm = ref 0L in
          (match cnd with
          | Mach.Rs { Mach.rcls = Mach.CS; rid } ->
              if not (Int64.equal w.si.(rid) 0L) then tm := mask
          | _ ->
              for lane = 0 to lanes - 1 do
                if lane_active mask lane && not (Int64.equal (src_i cnd lane) 0L) then
                  tm := Int64.logor !tm (Int64.shift_left 1L lane)
              done);
          let em = Int64.logand mask (Int64.lognot !tm) in
          if Int64.equal em 0L then run t mask stop
          else if Int64.equal !tm 0L then run e mask stop
          else begin
            let reconv =
              match Util.Smap.find_opt label ipdom with
              | Some r when r <> "<exit>" -> Some r
              | _ -> None
            in
            match reconv with
            | Some r ->
                let m1 = run t !tm r in
                let m2 = run e em r in
                let joined = Int64.logor m1 m2 in
                if r = stop then joined else run r joined stop
            | None ->
                let _ = run t !tm "<never>" in
                let _ = run e em "<never>" in
                0L
          end
    end
  in
  let _ = run (List.hd f.Mach.blocks).Mach.mlab init_mask "<never>" in
  ignore (popcount init_mask)

(* ------------------------------------------------------------------ *)
(* Kernel launch: iterate blocks and warps.                            *)

type launch_result = { counters : Counters.t; waves : int; blocks_launched : int }

let launch ~(device : Device.t) ~(mem : Gmem.t) ~(l2 : L2cache.t)
    ~(symbols : string -> int64) (f : Mach.mfunc) ~(grid : int) ~(block : int)
    ~(args : Konst.t array) : launch_result =
  let counters = Counters.create () in
  let warp = device.Device.warp_size in
  let thread_frame = f.Mach.frame + (f.Mach.spill_slots * 8) in
  let total_threads = grid * block in
  let scratch_bytes = max 16 (total_threads * thread_frame) in
  let scratch_base = Gmem.alloc mem scratch_bytes in
  let nwarps_per_block = (block + warp - 1) / warp in
  let prep = prepare f in
  for blk = 0 to grid - 1 do
    for wi = 0 to nwarps_per_block - 1 do
      let base_lane = wi * warp in
      let lanes_active = min warp (block - base_lane) in
      let lanes = warp in
      let nvr = max 1 f.Mach.vregs and nsr = max 1 f.Mach.sregs in
      let w =
        {
          lanes;
          vi = Array.make (nvr * lanes) 0L;
          vf = Array.make (nvr * lanes) 0.0;
          si = Array.make nsr 0L;
          sf = Array.make nsr 0.0;
          spi = Array.make (max 1 (f.Mach.spill_slots * lanes)) 0L;
          spf = Array.make (max 1 (f.Mach.spill_slots * lanes)) 0.0;
          sspi = Array.make (max 1 f.Mach.spill_slots) 0L;
          sspf = Array.make (max 1 f.Mach.spill_slots) 0.0;
          first_thread = (blk * block) + base_lane;
          block_id = (blk, 0, 0);
          base_tid = (base_lane, 0, 0);
        }
      in
      let env =
        {
          mem;
          l2;
          device;
          symbols;
          args;
          grid = (grid, 1, 1);
          block = (block, 1, 1);
          scratch_base;
          thread_frame;
          counters;
        }
      in
      let mask =
        if lanes_active >= 64 then -1L
        else Int64.sub (Int64.shift_left 1L lanes_active) 1L
      in
      run_warp env f prep w mask;
      counters.Counters.warps <- counters.Counters.warps + 1;
      counters.Counters.threads <- counters.Counters.threads + lanes_active
    done
  done;
  Gmem.free mem scratch_base;
  { counters; waves = counters.Counters.warps; blocks_launched = grid }
