(* Abstract syntax of Kernel-C: a C dialect with CUDA/HIP extensions
   (__global__/__device__ qualifiers, annotate/launch_bounds attributes,
   triple-chevron kernel launches, threadIdx/blockIdx builtins). *)

type pos = { line : int; col : int }

let pos_to_string p = Printf.sprintf "%d:%d" p.line p.col

type cty =
  | Cvoid
  | Cbool
  | Cint
  | Clong
  | Cfloat
  | Cdouble
  | Cptr of cty
  | Carr of cty * int (* only in declarations *)

let rec cty_to_string = function
  | Cvoid -> "void"
  | Cbool -> "bool"
  | Cint -> "int"
  | Clong -> "long"
  | Cfloat -> "float"
  | Cdouble -> "double"
  | Cptr t -> cty_to_string t ^ "*"
  | Carr (t, n) -> Printf.sprintf "%s[%d]" (cty_to_string t) n

type unop = Neg | Not | BitNot

type expr = { desc : expr_desc; epos : pos }

and expr_desc =
  | Eint of int64 * bool (* value, is_long *)
  | Efloat of float * bool (* value, is_double *)
  | Ebool of bool
  | Estr of string
  | Eid of string
  | Ebin of string * expr * expr (* operator symbol, e.g. "+", "&&" *)
  | Eun of unop * expr
  | Eassign of string * expr * expr (* "=", "+=", ... *)
  | Eincdec of bool * bool * expr (* is_pre, is_incr, lvalue *)
  | Ecall of string * expr list
  | Eindex of expr * expr
  | Emember of expr * string (* threadIdx.x and friends *)
  | Econd of expr * expr * expr
  | Ecast of cty * expr
  | Eaddr of expr
  | Ederef of expr
  | Elaunch of launch

and launch = {
  lkernel : string;
  lgrid : expr;
  lblock : expr;
  lshmem : expr option;
  largs : expr list;
}

type stmt = { sdesc : stmt_desc; spos : pos }

and stmt_desc =
  | Sdecl of cty * string * expr option
  | Sexpr of expr
  | Sif of expr * stmt * stmt option
  | Swhile of expr * stmt
  | Sfor of stmt option * expr option * expr option * stmt
  | Sreturn of expr option
  | Sblock of stmt list
  | Sseq of stmt list (* statement group without its own scope *)
  | Sbreak
  | Scontinue

type funkind = Fglobal | Fdevice | Fhost

type attr =
  | Annotate of string * int list (* annotate("jit", 1, 2, ...) *)
  | LaunchBounds of int * int

type fundef = {
  fattrs : attr list;
  fkind : funkind;
  fret : cty;
  fcname : string;
  fparams : (cty * string) list;
  fbody : stmt option; (* None for declarations *)
  fpos : pos;
}

type globdef = {
  gkind : funkind; (* Fdevice for __device__ globals, Fhost otherwise *)
  gshared : bool; (* declared __shared__: one copy per thread block *)
  gcty : cty;
  gcname : string;
  gcinit : expr option;
  gpos : pos;
}

type decl = Dfun of fundef | Dglob of globdef

type program = decl list

exception Error of pos * string

let error pos fmt = Format.kasprintf (fun s -> raise (Error (pos, s))) fmt
