lib/runtime/hip.ml: Gcn Ir Mach Proteus_backend Proteus_gpu Proteus_ir
