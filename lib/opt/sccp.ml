(* Sparse conditional constant propagation (Wegman-Zadeck): a combined
   reachability + constant lattice fixpoint. This is the pass that turns
   Proteus's runtime-constant folding of kernel arguments into dead
   branch elimination and known trip counts. *)

open Proteus_support
open Proteus_ir

type lat = Top | Const of Konst.t | Bottom

let meet a b =
  match (a, b) with
  | Top, x | x, Top -> x
  | Bottom, _ | _, Bottom -> Bottom
  | Const x, Const y -> if Konst.equal x y then Const x else Bottom

let run (_m : Ir.modul) (f : Ir.func) : bool =
  let cfg = Cfg.build f in
  let lat = Array.make (Ir.nregs f) Top in
  (* Parameters are runtime values. *)
  List.iter (fun (_, r) -> lat.(r) <- Bottom) f.Ir.params;
  let edge_exec : (string * string, bool) Hashtbl.t = Hashtbl.create 16 in
  let block_exec = ref Util.Sset.empty in
  let flow_work = ref [] and ssa_work = ref [] in
  let users =
    (* reg -> (block label) list of blocks containing a user instruction *)
    let tbl : (int, string list) Hashtbl.t = Hashtbl.create 64 in
    List.iter
      (fun (b : Ir.block) ->
        let add o =
          match o with
          | Ir.Reg r ->
              let cur = Option.value (Hashtbl.find_opt tbl r) ~default:[] in
              if not (List.mem b.Ir.label cur) then Hashtbl.replace tbl r (b.Ir.label :: cur)
          | _ -> ()
        in
        List.iter (fun i -> List.iter add (Ir.operands_of i)) b.Ir.insts;
        List.iter add (Ir.term_operands b.Ir.term))
      f.Ir.blocks;
    tbl
  in
  let lower r v =
    let nv = meet lat.(r) v in
    if nv <> lat.(r) then begin
      lat.(r) <- nv;
      ssa_work := Option.value (Hashtbl.find_opt users r) ~default:[] @ !ssa_work
    end
  in
  let operand_lat = function
    | Ir.Imm k -> Const k
    | Ir.Glob _ -> Bottom (* addresses are runtime values *)
    | Ir.Reg r -> lat.(r)
  in
  let eval_instr (b : Ir.block) i =
    match i with
    | Ir.IBin (d, op, x, y) -> (
        match (operand_lat x, operand_lat y) with
        | Const kx, Const ky -> (
            match Konst.binop op kx ky with
            | k -> lower d (Const k)
            | exception _ -> lower d Bottom)
        | Bottom, _ | _, Bottom -> lower d Bottom
        | _ -> ())
    | Ir.ICmp (d, op, x, y) -> (
        match (operand_lat x, operand_lat y) with
        | Const kx, Const ky -> (
            match Konst.cmpop op kx ky with
            | k -> lower d (Const k)
            | exception _ -> lower d Bottom)
        | Bottom, _ | _, Bottom -> lower d Bottom
        | _ -> ())
    | Ir.ISelect (d, c, x, y) -> (
        match operand_lat c with
        | Const k -> lower d (operand_lat (if Konst.as_bool k then x else y))
        | Bottom -> lower d (meet (operand_lat x) (operand_lat y))
        | Top -> ())
    | Ir.ICast (d, op, x) -> (
        match operand_lat x with
        | Const k -> (
            match Konst.cast op k (Ir.reg_ty f d) with
            | k' ->
                (* do not fold type-changing (pointer) bitcasts *)
                if Types.equal (Konst.ty_of k') (Ir.reg_ty f d) then lower d (Const k')
                else lower d Bottom
            | exception _ -> lower d Bottom)
        | Bottom -> lower d Bottom
        | Top -> ())
    | Ir.ILoad (d, _) | Ir.IGep (d, _, _) | Ir.IAlloca (d, _, _) -> lower d Bottom
    | Ir.ICall (Some d, callee, args) when Ir.Intrinsics.is_math callee -> (
        let lats = List.map operand_lat args in
        if List.exists (( = ) Bottom) lats then lower d Bottom
        else if List.for_all (function Const _ -> true | _ -> false) lats then
          let vals = List.map (function Const k -> k | _ -> assert false) lats in
          match Interp.eval_math callee vals with
          | k -> lower d (Const k)
          | exception _ -> lower d Bottom)
    | Ir.ICall (Some d, _, _) -> lower d Bottom
    | Ir.ICall (None, _, _) | Ir.IStore _ -> ()
    | Ir.IPhi (d, incoming) ->
        let v =
          List.fold_left
            (fun acc (l, o) ->
              if Option.value (Hashtbl.find_opt edge_exec (l, b.Ir.label)) ~default:false
              then meet acc (operand_lat o)
              else acc)
            Top incoming
        in
        lower d v
  in
  let mark_edge frm dst =
    if not (Option.value (Hashtbl.find_opt edge_exec (frm, dst)) ~default:false) then begin
      Hashtbl.replace edge_exec (frm, dst) true;
      flow_work := dst :: !flow_work
    end
  in
  let eval_term (b : Ir.block) =
    match b.Ir.term with
    | Ir.TBr l -> mark_edge b.Ir.label l
    | Ir.TCondBr (c, t, e) -> (
        match operand_lat c with
        | Const k -> mark_edge b.Ir.label (if Konst.as_bool k then t else e)
        | Bottom ->
            mark_edge b.Ir.label t;
            mark_edge b.Ir.label e
        | Top -> ())
    | Ir.TRet _ | Ir.TUnreachable -> ()
  in
  let visit_block label =
    let b = Ir.find_block f label in
    let first = not (Util.Sset.mem label !block_exec) in
    block_exec := Util.Sset.add label !block_exec;
    if first then begin
      List.iter (eval_instr b) b.Ir.insts;
      eval_term b
    end
    else begin
      (* re-evaluate phis only; the rest is driven by ssa_work *)
      List.iter
        (fun i -> match i with Ir.IPhi _ -> eval_instr b i | _ -> ())
        b.Ir.insts;
      eval_term b
    end
  in
  (match f.Ir.blocks with b :: _ -> flow_work := [ b.Ir.label ] | [] -> ());
  let guard = ref 0 in
  while (!flow_work <> [] || !ssa_work <> []) && !guard < 1_000_000 do
    incr guard;
    match !flow_work with
    | l :: rest ->
        flow_work := rest;
        visit_block l
    | [] -> (
        match !ssa_work with
        | l :: rest ->
            ssa_work := rest;
            if Util.Sset.mem l !block_exec then begin
              let b = Ir.find_block f l in
              List.iter (eval_instr b) b.Ir.insts;
              eval_term b
            end
        | [] -> ())
  done;
  (* Apply results: substitute constants, fold proven branches. *)
  let changed = ref false in
  (* account proven branches before fold_const_branches rewrites them *)
  List.iter
    (fun (b : Ir.block) ->
      if Util.Sset.mem b.Ir.label !block_exec then
        match b.Ir.term with
        | Ir.TCondBr (c, _, _) -> (
            match operand_lat c with
            | Const _ -> Pass.counters.Pass.sccp_branches <- Pass.counters.Pass.sccp_branches + 1
            | _ -> ())
        | _ -> ())
    f.Ir.blocks;
  let rewrite o =
    match o with
    | Ir.Reg r -> (
        match lat.(r) with
        | Const k ->
            changed := true;
            Ir.Imm k
        | _ -> o)
    | _ -> o
  in
  List.iter
    (fun (b : Ir.block) ->
      if Util.Sset.mem b.Ir.label !block_exec then begin
        b.Ir.insts <-
          List.filter
            (fun i ->
              match Ir.def_of i with
              | Some d -> (
                  match lat.(d) with
                  | Const _ ->
                      changed := true;
                      Pass.counters.Pass.sccp_folds <- Pass.counters.Pass.sccp_folds + 1;
                      false
                  | _ -> true)
              | None -> true)
            b.Ir.insts;
        b.Ir.insts <- List.map (Ir.map_operands rewrite) b.Ir.insts;
        b.Ir.term <- Ir.map_term_operands rewrite b.Ir.term
      end)
    f.Ir.blocks;
  if !changed then begin
    ignore (Simplifycfg.fold_const_branches f);
    ignore (Cfg.remove_unreachable f);
    ignore cfg
  end;
  !changed

let pass = { Pass.name = "sccp"; run }
