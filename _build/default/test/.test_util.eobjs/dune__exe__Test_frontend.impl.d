test/test_frontend.ml: Alcotest Array Ast Compile Cuda Device Gpurt Hip Hostexec Ir Lexer List Lower Parse Proteus_frontend Proteus_gpu Proteus_ir Proteus_opt Proteus_runtime String
