(* Kernel extraction: build a standalone IR module for one annotated
   kernel - the kernel itself, every device function it (transitively)
   calls, and extern declarations for every device global it references.
   The result is serialized to bitcode and embedded in the device
   binary; the JIT runtime parses it back at launch time. *)

open Proteus_support
open Proteus_ir

let reachable_funcs (m : Ir.modul) (root : string) : Util.Sset.t =
  let seen = ref Util.Sset.empty in
  let rec go name =
    if not (Util.Sset.mem name !seen) then begin
      seen := Util.Sset.add name !seen;
      match Ir.find_func_opt m name with
      | Some f when not f.Ir.is_decl ->
          Ir.iter_instrs f (fun i ->
              match i with
              | Ir.ICall (_, callee, _) when not (Ir.Intrinsics.is_intrinsic callee) ->
                  go callee
              | _ -> ())
      | _ -> ()
    end
  in
  go root;
  !seen

let referenced_globals (m : Ir.modul) (funcs : Util.Sset.t) : Util.Sset.t =
  let refs = ref Util.Sset.empty in
  List.iter
    (fun (f : Ir.func) ->
      if Util.Sset.mem f.Ir.fname funcs then begin
        let note = function
          | Ir.Glob g -> if Ir.find_global_opt m g <> None then refs := Util.Sset.add g !refs
          | _ -> ()
        in
        List.iter
          (fun (b : Ir.block) ->
            List.iter (fun i -> List.iter note (Ir.operands_of i)) b.Ir.insts;
            List.iter note (Ir.term_operands b.Ir.term))
          f.Ir.blocks
      end)
    m.Ir.funcs;
  !refs

(* Extract the (unoptimized) kernel into a standalone module. Globals
   become extern declarations: the JIT runtime links them to the AOT
   module's allocations by address at runtime. *)
let extract_kernel (m : Ir.modul) (kernel : string) : Ir.modul =
  let funcs = reachable_funcs m kernel in
  let globals = referenced_globals m funcs in
  {
    Ir.mid = m.Ir.mid;
    mname = m.Ir.mname ^ ".jit." ^ kernel;
    mtarget = Ir.TDevice;
    globals =
      List.filter_map
        (fun (g : Ir.gvar) ->
          if Util.Sset.mem g.Ir.gname globals then
            Some { g with Ir.ginit = Ir.InitZero; gextern = true }
          else None)
        m.Ir.globals;
    funcs =
      List.filter_map
        (fun (f : Ir.func) ->
          if Util.Sset.mem f.Ir.fname funcs then Some (Ir.clone_func f) else None)
        m.Ir.funcs;
    annotations = List.filter (fun (a : Ir.annotation) -> a.Ir.afunc = kernel) m.Ir.annotations;
    ctors = [];
    mgen = 0;
  }

let bitcode_of_kernel (m : Ir.modul) (kernel : string) : string =
  Bitcode.encode_module (extract_kernel m kernel)
