(* The benchmark suite of Table 1. *)

let apps : App.t list =
  [ Adam.app; Rsbench.app; Wsm5.app; Feykac.app; Lulesh.app; Sw4ck.app ]

let find name =
  match List.find_opt (fun (a : App.t) -> String.lowercase_ascii a.App.name = String.lowercase_ascii name) apps with
  | Some a -> a
  | None ->
      Proteus_support.Util.failf "unknown benchmark %s (have: %s)" name
        (String.concat ", " (List.map (fun (a : App.t) -> a.App.name) apps))
