(* Domain example: Monte Carlo estimation of pi with atomics, run
   through the direct Jitify-like API and through Proteus - the same
   comparison the paper draws, on a self-contained kernel. The Jitify
   path shows the cost of shipping the kernel as a source string and
   invoking the full toolchain at runtime.

   Run with: dune exec examples/montecarlo_pi.exe                     *)

open Proteus_ir
open Proteus_gpu
open Proteus_runtime

let kernel_source =
  Proteus_examples.Sources.montecarlo_pi.Proteus_examples.Sources.source

let threads = 4096
let block = 128
let samples = 64

let () =
  print_endline "Monte Carlo pi: direct Jitify-like runtime compilation API\n";
  let device = Device.by_vendor Device.Nvidia in
  let rt = Gpurt.create device in
  (* allocate and zero the hit counter *)
  let hits = Gpurt.dmalloc rt 8 in
  Proteus_gpu.Gmem.write_f32 rt.Gpurt.mem hits 0.0;
  (* Jitify-style: program from a source string, instantiate with the
     sample count baked in as a "template parameter" *)
  let jt = Proteus_jitify.Jitify.create rt in
  let prog = Proteus_jitify.Jitify.program ~name:"mc_pi" kernel_source in
  Proteus_jitify.Jitify.launch jt prog ~sym:"mc_pi"
    ~consts:[ (2, Konst.ki32 samples) ]
    ~grid:(threads / block) ~block
    ~args:
      [| Konst.kint ~bits:64 hits; Konst.ki32 samples; Konst.ki32 12345 |];
  let total = Proteus_gpu.Gmem.read_f32 rt.Gpurt.mem hits in
  let pi = 4.0 *. total /. float_of_int (threads * samples) in
  Printf.printf "jitify-API estimate: pi ~= %.4f (%d samples)\n" pi (threads * samples);
  Printf.printf "jitify compiles: %d, overhead %.4f ms (simulated)\n"
    jt.Proteus_jitify.Jitify.compiles
    (jt.Proteus_jitify.Jitify.compile_overhead_s *. 1e3);
  (* a second launch with the same instantiation hits the cache *)
  Proteus_gpu.Gmem.write_f32 rt.Gpurt.mem hits 0.0;
  Proteus_jitify.Jitify.launch jt prog ~sym:"mc_pi"
    ~consts:[ (2, Konst.ki32 samples) ]
    ~grid:(threads / block) ~block
    ~args:
      [| Konst.kint ~bits:64 hits; Konst.ki32 samples; Konst.ki32 999 |];
  Printf.printf "second launch reused the cached instantiation (compiles still %d)\n"
    jt.Proteus_jitify.Jitify.compiles;
  if Float.abs (pi -. 3.14159) > 0.15 then begin
    Printf.eprintf "pi estimate out of tolerance!\n";
    exit 1
  end;

