lib/proteus/fault.ml: List Printf String Sys
