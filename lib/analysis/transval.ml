(* TransVal: symbolic translation validation of JIT-transformed kernels.

   Two versions of a kernel are symbolically executed into canonical
   summaries — a return-value term plus one symbolic store chain per
   address space — and compared structurally. The term language is
   hash-consed, and every constructor normalizes: constant folding,
   commutative/associative reordering and the algebraic identities of
   lib/opt/simplify.ml are applied at construction time, so any two
   expressions the optimizer treats as equal intern to the same term.

   Control flow is evaluated in gated-SSA style: each block carries a
   guard term (the disjunction of its incoming edge guards — the active
   mask of the lanes that reach it), phis become guard-keyed Merge
   terms, and memory events record the guard under which they happen,
   so SIMT-divergent regions compare lane-accurate. Private (scratch)
   memory is store-forwarded through the chain, which subsumes and
   thereby validates mem2reg. Loops are cutpoints: statically-bounded
   trip counts unroll on both sides; dynamic loops are summarized into
   canonical fixpoint signatures (inits / steps / continue-condition /
   body events over de-Bruijn state variables) whose structural
   equality replaces cross-side matching.

   Verdicts: [Proven] (summaries intern identically), [Refuted] (a
   structural impossibility — use of an undefined register, a phi
   missing a live incoming edge — or a concrete counterexample found by
   sampling a pure mismatch), [Unproven] (anything the engine cannot
   decide; never treated as failure unless the caller is strict).
   Comparison identities that are invalid on NaN inputs (operator
   flips, reflexive folds) are restricted to operands not known to be
   floats, so Proven is NaN-faithful wherever operand types are known.
   The engine is single-flight: a global lock serializes check_kernel
   and each validation evaluates in a fresh term universe. *)

open Proteus_support
open Proteus_ir

(* ------------------------------------------------------------------ *)
(* Hash-consed terms                                                   *)

type node =
  | Const of Konst.t
  | Param of int * Types.ty (* kernel parameter, by position *)
  | GlobAddr of string (* address of a module-local global *)
  | Query of string (* gpu.tid.x and friends *)
  | FreeVar of int (* loop state var during summarization *)
  | SVar of int * int (* de-Bruijn (binder depth, var index) *)
  | AllocaBase of int * Types.ty (* allocation site serial, elem ty *)
  | Bin of Ops.binop * Types.ty * term list (* n-ary when assoc-comm *)
  | Cmp of Ops.cmpop * term * term
  | Not of term
  | Cast of Ops.castop * Types.ty * term
  | Gep of term * term * Types.ty (* base, index, element type *)
  | MathCall of string * term list
  | Merge of (term * term) list (* (guard, value), guards disjoint *)
  | Load of Types.addrspace * term * term * Types.ty (* space, chain, addr *)
  | EffectRes of term (* value produced by a ChainEffect node *)
  | LoopOut of term * int (* Loop term, canonical state-var index *)
  | Loop of loop_sig
  | Nil of Types.addrspace (* empty store chain *)
  | ChainStore of term * term * term * term * Types.ty (* prev,guard,addr,value *)
  | ChainEffect of term * term * string * term list (* prev,guard,callee,args *)
  | ChainBarrier of term * term (* prev, guard *)
  | ChainLoop of term * term (* prev, Loop term *)

and term = { id : int; node : node }

(* Binder: inside l_steps / l_cond / l_chains, SVar(0, i) is this
   loop's i-th state variable; l_inits live outside the binder. *)
and loop_sig = {
  l_inits : term list;
  l_steps : term list;
  l_cond : term; (* continue condition, over SVar(0, _) *)
  l_chains : term list; (* relative per-space body chains *)
}

(* ------------------------------------------------------------------ *)
(* Interning                                                           *)

let intern_tbl : (string, term) Hashtbl.t = Hashtbl.create 4096
let next_id = ref 0

let konst_key = function
  | Konst.KBool b -> if b then "b1" else "b0"
  | Konst.KInt (v, b) -> Printf.sprintf "i%d:%Ld" b v
  | Konst.KFloat (v, b) -> Printf.sprintf "f%d:%Ld" b (Int64.bits_of_float v)
  | Konst.KNull -> "null"

let node_key n =
  let b = Buffer.create 32 in
  let id t = Buffer.add_string b (string_of_int t.id); Buffer.add_char b ',' in
  let ids ts = List.iter id ts in
  let s x = Buffer.add_string b x; Buffer.add_char b ';' in
  (match n with
  | Const k -> s "K"; s (konst_key k)
  | Param (i, ty) -> s "P"; s (string_of_int i); s (Types.to_string ty)
  | GlobAddr g -> s "G"; s g
  | Query q -> s "Q"; s q
  | FreeVar v -> s "V"; s (string_of_int v)
  | SVar (d, i) -> s "S"; s (string_of_int d); s (string_of_int i)
  | AllocaBase (k, ty) -> s "A"; s (string_of_int k); s (Types.to_string ty)
  | Bin (op, ty, ts) -> s "B"; s (Ops.binop_to_string op); s (Types.to_string ty); ids ts
  | Cmp (op, x, y) -> s "C"; s (Ops.cmpop_to_string op); id x; id y
  | Not x -> s "N"; id x
  | Cast (op, ty, x) -> s "T"; s (Ops.castop_to_string op); s (Types.to_string ty); id x
  | Gep (p, i, ty) -> s "g"; id p; id i; s (Types.to_string ty)
  | MathCall (f, ts) -> s "M"; s f; ids ts
  | Merge es -> s "m"; List.iter (fun (g, v) -> id g; id v) es
  | Load (sp, c, a, ty) ->
      s "L"; s (Types.to_string (Types.TPtr (Types.TVoid, sp))); id c; id a;
      s (Types.to_string ty)
  | EffectRes e -> s "E"; id e
  | LoopOut (l, i) -> s "O"; id l; s (string_of_int i)
  | Loop l ->
      s "l"; ids l.l_inits; s "|"; ids l.l_steps; s "|"; id l.l_cond; s "|";
      ids l.l_chains
  | Nil sp -> s "n"; s (Types.to_string (Types.TPtr (Types.TVoid, sp)))
  | ChainStore (p, g, a, v, ty) ->
      s "cs"; id p; id g; id a; id v; s (Types.to_string ty)
  | ChainEffect (p, g, f, args) -> s "ce"; id p; id g; s f; ids args
  | ChainBarrier (p, g) -> s "cb"; id p; id g
  | ChainLoop (p, l) -> s "cl"; id p; id l);
  Buffer.contents b

let intern n =
  let key = node_key n in
  match Hashtbl.find_opt intern_tbl key with
  | Some t -> t
  | None ->
      let t = { id = !next_id; node = n } in
      incr next_id;
      Hashtbl.add intern_tbl key t;
      t

(* Provenance side tables: source location / block active when a term
   was first created on a side that had dbg.loc markers. Kept outside
   the terms so stripped-debug candidates still intern identically. *)
let loc_tbl : (int, int * int) Hashtbl.t = Hashtbl.create 256
let blk_tbl : (int, string) Hashtbl.t = Hashtbl.create 256

let note_provenance t ~(loc : (int * int) option) ~(block : string) =
  (match loc with
  | Some l -> if not (Hashtbl.mem loc_tbl t.id) then Hashtbl.add loc_tbl t.id l
  | None -> ());
  if not (Hashtbl.mem blk_tbl t.id) then Hashtbl.add blk_tbl t.id block

(* ------------------------------------------------------------------ *)
(* Normalizing constructors                                            *)

let const k = intern (Const k)
let cbool b = const (Konst.kbool b)
(* Functions, not memoized lazies: [check_kernel] resets the term
   universe per validation, and a term cached across a reset would no
   longer be the interned representative of its node. *)
let tt () = cbool true
let ff () = cbool false
let is_const_bool b t = match t.node with Const (Konst.KBool x) -> x = b | _ -> false
let is_true t = is_const_bool true t
let is_false t = is_const_bool false t

let conjuncts g =
  match g.node with
  | Bin (Ops.And, Types.TBool, l) -> l
  | Const (Konst.KBool true) -> []
  | _ -> [ g ]

let disjuncts g =
  match g.node with
  | Bin (Ops.Or, Types.TBool, l) -> l
  | Const (Konst.KBool false) -> []
  | _ -> [ g ]

let sort_terms ts = List.sort_uniq (fun a b -> compare a.id b.id) ts

(* Partial term typing: enough to drive cast folding, zero-filling and
   the float guards below. *)
let rec ty_of_term t =
  match t.node with
  | Const k -> Some (Konst.ty_of k)
  | Param (_, ty) -> Some ty
  | Query _ -> Some (Types.TInt 32)
  | Bin (_, ty, _) -> Some ty
  | Cmp _ | Not _ -> Some Types.TBool
  | Cast (_, ty, _) -> Some ty
  | Gep (p, _, _) -> ty_of_term p
  | Load (_, _, _, ty) -> Some ty
  | AllocaBase (_, ty) -> Some (Types.TPtr (ty, Types.AS_scratch))
  | Merge ((_, v) :: _) -> ty_of_term v
  | _ -> None

(* NaN discipline: IEEE comparisons on NaN inputs falsify both a
   predicate and its operator-flipped negation, and x==x is false, so
   the operator-flip and reflexive-compare identities below are
   restricted to operands not known to be floats. (Operands of unknown
   type — loop state, loads — are treated as orderable; kernels whose
   behavior hinges on NaN propagation through those are a documented
   unproven corner, see DESIGN.md.) *)
let is_float_term t =
  match ty_of_term t with Some (Types.TFloat _) -> true | _ -> false

(* Negation-normal form: Not is pushed through compound booleans (De
   Morgan) and comparisons (operator flip), so negations only ever wrap
   opaque atoms. Without this, an O0-side ¬(a∨b) (from a short-circuit
   else edge) never matches the O3-side ¬a∧¬b that Simplifycfg's
   restructured edges produce. *)
let rec mk_not g =
  match g.node with
  | Const (Konst.KBool b) -> cbool (not b)
  | Not x -> x
  | Cmp (op, a, b) when not (is_float_term a || is_float_term b) ->
      (* ¬(a<b) = a≥b is false for NaN operands: only flip int/bool *)
      let open Ops in
      let op' =
        match op with
        | CEq -> CNe | CNe -> CEq | CLt -> CGe | CGe -> CLt | CLe -> CGt | CGt -> CLe
      in
      intern (Cmp (op', a, b))
  | Bin (Ops.And, Types.TBool, l) -> mk_or (List.map mk_not l)
  | Bin (Ops.Or, Types.TBool, l) -> mk_and (List.map mk_not l)
  | _ -> intern (Not g)

and mk_and gs =
  let parts = List.concat_map conjuncts gs in
  if List.exists is_false parts then ff ()
  else
    let parts = sort_terms (List.filter (fun t -> not (is_true t)) parts) in
    if List.exists (fun t -> List.exists (fun u -> (mk_not t).id = u.id) parts) parts
    then ff ()
    else
      (* Unit propagation: inside an or-conjunct, a disjunct contradicted
         by a sibling conjunct vanishes, and an or-conjunct containing a
         disjunct implied by the siblings is itself implied and vanishes.
         This is what lets the ¬(stored-guard) chains a scratch-load walk
         produces collapse to the bare else-conditions mem2reg's phi edges
         carry. *)
      let changed = ref false in
      let parts' =
        List.filter_map
          (fun p ->
            match p.node with
            | Bin (Ops.Or, Types.TBool, ds) ->
                let others = List.filter (fun q -> q.id <> p.id) parts in
                let known t = List.exists (fun q -> q.id = t.id) others in
                let refuted d =
                  List.exists (fun c -> known (mk_not c)) (conjuncts d)
                in
                if List.exists (fun d -> List.for_all known (conjuncts d)) ds
                then begin changed := true; None end
                else
                  let ds' = List.filter (fun d -> not (refuted d)) ds in
                  (* strip sibling-implied conjuncts inside each disjunct:
                     A ∧ (X ∨ (A∧B)) = A ∧ (X∨B) *)
                  let ds' =
                    List.map
                      (fun d ->
                        let cs = conjuncts d in
                        let cs' = List.filter (fun c -> not (known c)) cs in
                        if List.length cs' <> List.length cs then mk_and cs'
                        else d)
                      ds'
                  in
                  let p' = mk_or ds' in
                  if p'.id <> p.id then begin changed := true; Some p' end
                  else Some p
            | _ -> Some p)
          parts
      in
      if !changed then mk_and parts'
      else
        (* dual factoring: (X∨c) ∧ (X∨¬c) = X — the CNF mirror of
           mk_or's complementary-literal rule *)
        let fact =
          List.find_map
            (fun p1 ->
              match p1.node with
              | Bin (Ops.Or, Types.TBool, _) ->
                  let d1 = disjuncts p1 in
                  List.find_map
                    (fun p2 ->
                      if p2.id <= p1.id then None
                      else
                        match p2.node with
                        | Bin (Ops.Or, Types.TBool, _) ->
                            let d2 = disjuncts p2 in
                            if List.length d1 <> List.length d2 then None
                            else
                              let only1 =
                                List.filter
                                  (fun c ->
                                    not (List.exists (fun c' -> c'.id = c.id) d2))
                                  d1
                              and only2 =
                                List.filter
                                  (fun c ->
                                    not (List.exists (fun c' -> c'.id = c.id) d1))
                                  d2
                              in
                              (match (only1, only2) with
                              | [ a ], [ b ] when (mk_not a).id = b.id ->
                                  Some
                                    ( p1, p2,
                                      mk_or
                                        (List.filter (fun c -> c.id <> a.id) d1)
                                    )
                              | _ -> None)
                        | _ -> None)
                    parts
              | _ -> None)
            parts
        in
        match fact with
        | Some (p1, p2, merged) ->
            mk_and
              (merged
              :: List.filter (fun p -> p.id <> p1.id && p.id <> p2.id) parts)
        | None -> (
            match parts with
            | [] -> tt ()
            | [ g ] -> g
            | l -> intern (Bin (Ops.And, Types.TBool, l)))

(* Disjunction with absorption and complementary-literal factoring:
   X ∨ (X∧c) = X and (A∧c) ∨ (A∧¬c) = A. The factoring rule is what
   collapses "either branch of the diamond" back into the dominating
   guard, keeping guards CFG-shape-insensitive. *)
and mk_or gs =
  let parts = List.concat_map disjuncts gs in
  if List.exists is_true parts then tt ()
  else
    let parts = ref (sort_terms (List.filter (fun t -> not (is_false t)) parts)) in
    let changed = ref true in
    while !changed do
      changed := false;
      let l = !parts in
      (* absorption: drop d2 if conj(d1) subset of conj(d2) *)
      let absorbed =
        List.filter
          (fun d2 ->
            not
              (List.exists
                 (fun d1 ->
                   d1.id <> d2.id
                   && List.for_all
                        (fun c -> List.exists (fun c2 -> c2.id = c.id) (conjuncts d2))
                        (conjuncts d1))
                 l))
          l
      in
      if List.length absorbed <> List.length l then begin
        parts := absorbed;
        changed := true
      end
      else begin
        (* factoring: find a pair differing in exactly one complementary literal *)
        let rec find_pair = function
          | [] -> None
          | d1 :: rest ->
              let c1 = conjuncts d1 in
              let hit =
                List.find_map
                  (fun d2 ->
                    let c2 = conjuncts d2 in
                    if List.length c1 <> List.length c2 then None
                    else
                      let only1 =
                        List.filter
                          (fun c -> not (List.exists (fun c' -> c'.id = c.id) c2))
                          c1
                      and only2 =
                        List.filter
                          (fun c -> not (List.exists (fun c' -> c'.id = c.id) c1))
                          c2
                      in
                      match (only1, only2) with
                      | [ a ], [ b ] when (mk_not a).id = b.id ->
                          let shared =
                            List.filter (fun c -> c.id <> a.id) c1
                          in
                          Some (d1, d2, mk_and shared)
                      | _ -> None)
                  rest
              in
              (match hit with Some _ -> hit | None -> find_pair rest)
        in
        match find_pair l with
        | Some (d1, d2, merged) ->
            parts :=
              sort_terms
                (merged
                :: List.filter (fun d -> d.id <> d1.id && d.id <> d2.id) l);
            changed := true
        | None -> (
            (* resolution-absorption: X ∨ (¬X∧Y) = X ∨ Y, generalized —
               d2 drops a literal y when another disjunct covers
               (d2 \ y) ∧ ¬y *)
            let res =
              List.find_map
                (fun d2 ->
                  let c2 = conjuncts d2 in
                  List.find_map
                    (fun y ->
                      let ny = mk_not y in
                      let rest = List.filter (fun c -> c.id <> y.id) c2 in
                      if
                        List.exists
                          (fun d1 ->
                            d1.id <> d2.id
                            && List.exists (fun c -> c.id = ny.id) (conjuncts d1)
                            && List.for_all
                                 (fun c ->
                                   c.id = ny.id
                                   || List.exists (fun c' -> c'.id = c.id) rest)
                                 (conjuncts d1))
                          l
                      then Some (d2, mk_and rest)
                      else None)
                    c2)
                l
            in
            match res with
            | Some (d2, d2') ->
                parts :=
                  sort_terms
                    (d2' :: List.filter (fun d -> d.id <> d2.id) l);
                changed := true
            | None -> ())
      end
    done;
    match !parts with
    | [] -> ff ()
    | [ g ] -> g
    | l ->
        if List.exists (fun t -> List.exists (fun u -> (mk_not t).id = u.id) l) l
        then tt ()
        else
          (* common-conjunct factoring: (A∧B) ∨ (A∧C) = A ∧ (B∨C), so a
             guard pooled from several same-context CFG edges interns the
             same as the context-outside form a forwarding walk builds *)
          let common =
            List.fold_left
              (fun acc d ->
                List.filter
                  (fun c -> List.exists (fun c' -> c'.id = c.id) (conjuncts d))
                  acc)
              (conjuncts (List.hd l))
              (List.tl l)
          in
          if common <> [] then
            mk_and
              (common
              @ [
                  mk_or
                    (List.map
                       (fun d ->
                         mk_and
                           (List.filter
                              (fun c ->
                                not
                                  (List.exists (fun c' -> c'.id = c.id) common))
                              (conjuncts d)))
                       l);
                ])
          else intern (Bin (Ops.Or, Types.TBool, l))

(* h ∧ g when g's conjuncts are known to extend h's: h ∧ ¬g = h ∧ ¬extra,
   matching the edge-guard shape mem2reg's phis produce. *)
let guard_and h g = mk_and [ h; g ]

let guard_andnot h g =
  let ch = conjuncts h and cg = conjuncts g in
  let subset = List.for_all (fun c -> List.exists (fun c' -> c'.id = c.id) cg) ch in
  if subset then
    let extra = List.filter (fun c -> not (List.exists (fun c' -> c'.id = c.id) ch)) cg in
    mk_and (h :: [ mk_not (mk_and extra) ])
  else mk_and [ h; mk_not g ]

let int_bits = function Types.TInt b -> b | Types.TBool -> 1 | _ -> 0

let neutral op ty =
  let bits = int_bits ty in
  match op with
  | Ops.Add | Ops.Or | Ops.Xor -> Konst.kint ~bits 0L
  | Ops.Mul -> Konst.kint ~bits 1L
  | Ops.And -> Konst.kint ~bits (-1L)
  | _ -> assert false

let exact_recip c bits =
  c <> 0.0
  && (let m, _ = Float.frexp c in Float.abs m = 0.5)
  &&
  let r = if bits = 32 then Util.to_f32 (1.0 /. c) else 1.0 /. c in
  Float.is_finite r && r <> 0.0

let is_assoc_comm_int = function
  | Ops.Add | Ops.Mul | Ops.And | Ops.Or | Ops.Xor -> true
  | _ -> false

let rec mk_bin op ty a b =
  match (op, ty) with
  | (Ops.And | Ops.Or), Types.TBool ->
      if op = Ops.And then mk_and [ a; b ] else mk_or [ a; b ]
  | Ops.Xor, Types.TBool ->
      (* bool xor = inequality; keep as a 2-term sorted Bin *)
      fold_or_build op ty [ a; b ]
  | Ops.Sub, Types.TInt bits ->
      (* canonicalize integer subtraction into n-ary addition *)
      mk_nary Ops.Add ty [ a; mk_nary Ops.Mul ty [ const (Konst.kint ~bits (-1L)); b ] ]
  | Ops.Shl, Types.TInt bits -> (
      match b.node with
      | Const (Konst.KInt (k, _)) when k >= 0L && k < Int64.of_int bits ->
          mk_nary Ops.Mul ty
            [ a; const (Konst.kint ~bits (Int64.shift_left 1L (Int64.to_int k))) ]
      | _ -> fold_or_build op ty [ a; b ])
  | op, Types.TInt _ when is_assoc_comm_int op -> mk_nary op ty [ a; b ]
  | (Ops.LShr | Ops.AShr), Types.TInt _ -> (
      match b.node with
      | Const (Konst.KInt (0L, _)) -> a
      | _ -> fold_or_build op ty [ a; b ])
  | Ops.SDiv, Types.TInt _ -> (
      match b.node with
      | Const (Konst.KInt (1L, _)) -> a
      | _ -> fold_or_build op ty [ a; b ])
  | (Ops.SMin | Ops.SMax), Types.TInt _ ->
      if a.id = b.id then a else fold_or_build ~sort:true op ty [ a; b ]
  | Ops.FAdd, Types.TFloat _ -> (
      match b.node with
      | Const (Konst.KFloat (c, _)) when Int64.equal (Int64.bits_of_float c) (Int64.bits_of_float (-0.0)) -> a
      | _ -> (
          match a.node with
          | Const (Konst.KFloat (c, _))
            when Int64.equal (Int64.bits_of_float c) (Int64.bits_of_float (-0.0)) -> b
          | _ -> fold_or_build ~sort:true op ty [ a; b ]))
  | Ops.FSub, Types.TFloat _ -> (
      match b.node with
      | Const (Konst.KFloat (c, _)) when Int64.equal (Int64.bits_of_float c) 0L -> a
      | _ -> fold_or_build op ty [ a; b ])
  | Ops.FMul, Types.TFloat _ -> (
      match (a.node, b.node) with
      | Const (Konst.KFloat (1.0, _)), _ -> b
      | _, Const (Konst.KFloat (1.0, _)) -> a
      | Const (Konst.KFloat (2.0, _)), _ -> mk_bin Ops.FAdd ty b b
      | _, Const (Konst.KFloat (2.0, _)) -> mk_bin Ops.FAdd ty a a
      | _ -> fold_or_build ~sort:true op ty [ a; b ])
  | Ops.FDiv, Types.TFloat bits -> (
      match b.node with
      | Const (Konst.KFloat (1.0, _)) -> a
      | Const (Konst.KFloat (c, _)) when exact_recip c bits ->
          let r = if bits = 32 then Util.to_f32 (1.0 /. c) else 1.0 /. c in
          mk_bin Ops.FMul ty a (const (Konst.KFloat (r, bits)))
      | _ -> fold_or_build op ty [ a; b ])
  | (Ops.FMin | Ops.FMax), Types.TFloat _ -> fold_or_build ~sort:true op ty [ a; b ]
  | _ -> fold_or_build op ty [ a; b ]

and fold_or_build ?(sort = false) op ty ts =
  match ts with
  | [ { node = Const ka; _ }; { node = Const kb; _ } ] -> (
      match Konst.binop op ka kb with
      | k -> const k
      | exception _ -> build2 ~sort op ty ts)
  | _ -> build2 ~sort op ty ts

and build2 ~sort op ty ts =
  let ts = if sort then List.sort (fun a b -> compare a.id b.id) ts else ts in
  intern (Bin (op, ty, ts))

(* Flattened, constant-folded, sorted n-ary form for the associative-
   commutative integer ops; mirrors (and slightly exceeds) what the
   combination of Simplify + Gvn can conclude. *)
and mk_nary op ty ts =
  let flat =
    List.concat_map
      (fun t -> match t.node with Bin (o, ty', l) when o = op && Types.equal ty ty' -> l | _ -> [ t ])
      ts
  in
  let consts, rest =
    List.partition (fun t -> match t.node with Const (Konst.KInt _) -> true | _ -> false) flat
  in
  let kfold =
    List.fold_left
      (fun acc t ->
        match t.node with Const k -> Konst.binop op acc k | _ -> acc)
      (neutral op ty) consts
  in
  (* absorbing elements *)
  let absorbed =
    match (op, kfold) with
    | Ops.Mul, Konst.KInt (0L, _) -> true
    | Ops.And, Konst.KInt (0L, _) -> true
    | _ -> false
  in
  if absorbed then const kfold
  else
    let rest =
      match op with
      | Ops.And | Ops.Or -> sort_terms rest
      | Ops.Xor ->
          (* pairs cancel *)
          let sorted = List.sort (fun a b -> compare a.id b.id) rest in
          let rec cancel = function
            | a :: b :: tl when a.id = b.id -> cancel tl
            | a :: tl -> a :: cancel tl
            | [] -> []
          in
          cancel sorted
      | _ -> List.sort (fun a b -> compare a.id b.id) rest
    in
    let keep_const = not (Konst.equal kfold (neutral op ty)) in
    let parts = rest @ (if keep_const then [ const kfold ] else []) in
    match parts with
    | [] -> const (neutral op ty)
    | [ t ] -> t
    | l -> intern (Bin (op, ty, l))

and mk_cmp op a b =
  match (a.node, b.node) with
  | Const ka, Const kb -> (
      match Konst.cmpop op ka kb with k -> const k | exception _ -> intern (Cmp (op, a, b)))
  (* x==x is false (and x<x vacuous) when x is NaN: reflexive folds
     only apply to operands not known to be floats *)
  | _ when a.id = b.id && not (is_float_term a) -> (
      match op with
      | Ops.CEq | Ops.CLe | Ops.CGe -> cbool true
      | Ops.CNe | Ops.CLt | Ops.CGt -> cbool false)
  | _ -> intern (Cmp (op, a, b))

let mk_cast op ty a =
  match a.node with
  | Const k -> (
      match Konst.cast op k ty with
      | k' when Types.equal (Konst.ty_of k') ty -> const k'
      | _ -> intern (Cast (op, ty, a))
      | exception _ -> intern (Cast (op, ty, a)))
  | _ -> (
      match (op, ty_of_term a) with
      | Ops.Bitcast, Some ta when Types.equal ta ty -> a
      | _ -> intern (Cast (op, ty, a)))

let mk_gep base idx ety =
  match idx.node with
  | Const (Konst.KInt (0L, _)) -> base
  | _ -> (
      match base.node with
      | Gep (b2, i2, ety2) when Types.equal ety ety2 ->
          intern (Gep (b2, mk_bin Ops.Add (Types.TInt 64)
                         (mk_cast Ops.Sext (Types.TInt 64) i2)
                         (mk_cast Ops.Sext (Types.TInt 64) idx), ety))
      | _ -> intern (Gep (base, idx, ety)))

let mk_math f args =
  let consts =
    List.filter_map (fun t -> match t.node with Const k -> Some k | _ -> None) args
  in
  if List.length consts = List.length args then
    match Interp.eval_math f consts with
    | k -> const k
    | exception _ -> intern (MathCall (f, args))
  else intern (MathCall (f, args))

(* Guard-keyed value merge (phi / select). Entries under a false guard
   vanish; nested merges flatten; identical values pool their guards.
   Boolean merges lower into the guard algebra itself — ∨(gᵢ∧vᵢ) — so a
   short-circuit phi compares equal to the and/or chain an optimizer
   may restructure it into.

   Each arm's value is additionally rewritten under the assumption that
   its guard holds ([assume]): nested-merge guards drop conjuncts the
   context implies and disjuncts it refutes. A value forwarded out of a
   store guarded by the branch condition thereby interns identically to
   the context-free phi mem2reg builds at the same join point. Only the
   pure spine is rewritten (memory and loop nodes are left alone), so
   the rewrite is semantics-preserving whenever the arm is selected. *)
let assume_memo : (string, term) Hashtbl.t = Hashtbl.create 256

let rec mk_merge entries =
  let rec flat (g, v) =
    if is_false g then []
    else
      let v = assume (conjuncts g) v in
      match v.node with
      | Merge inner -> List.concat_map (fun (h, u) -> flat (mk_and [ g; h ], u)) inner
      | _ -> [ (g, v) ]
  in
  let entries = List.concat_map flat entries in
  (* pool guards per distinct value *)
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  List.iter
    (fun (g, v) ->
      match Hashtbl.find_opt tbl v.id with
      | Some gs -> Hashtbl.replace tbl v.id (g :: gs)
      | None ->
          Hashtbl.add tbl v.id [ g ];
          order := v :: !order)
    entries;
  let pooled =
    List.rev_map (fun v -> (mk_or (List.rev (Hashtbl.find tbl v.id)), v)) !order
  in
  let pooled = List.filter (fun (g, _) -> not (is_false g)) pooled in
  let all_bool =
    pooled <> []
    && List.for_all
         (fun (_, v) -> match ty_of_term v with Some Types.TBool -> true | _ -> false)
         pooled
  in
  if all_bool then mk_or (List.map (fun (g, v) -> mk_and [ g; v ]) pooled)
  else
    match pooled with
    | [] -> intern (Merge [])
    | [ (_, v) ] -> v
    | l ->
        let l = List.sort (fun (g1, _) (g2, _) -> compare g1.id g2.id) l in
        intern (Merge l)

and assume s v =
  match s with
  | [] -> v
  | _ -> (
      let key =
        String.concat "," (List.map (fun t -> string_of_int t.id) s)
        ^ ";" ^ string_of_int v.id
      in
      match Hashtbl.find_opt assume_memo key with
      | Some r -> r
      | None ->
          let r =
            match v.node with
            | Merge es ->
                mk_merge
                  (List.map
                     (fun (h, u) ->
                       let h' = given s h in
                       (h', assume (sort_terms (s @ conjuncts h')) u))
                     es)
            | Bin (op, ty, ts) -> (
                let ts' = List.map (assume s) ts in
                match ts' with
                | [ a; b ] -> mk_bin op ty a b
                | _ -> mk_nary op ty ts')
            | Cmp (op, a, b) -> mk_cmp op (assume s a) (assume s b)
            | Not a -> mk_not (assume s a)
            | Cast (op, ty, a) -> mk_cast op ty (assume s a)
            | Gep (p, i, ty) -> mk_gep (assume s p) (assume s i) ty
            | MathCall (fn, ts) -> mk_math fn (List.map (assume s) ts)
            | _ -> v
          in
          Hashtbl.add assume_memo key r;
          r)

(* [given s h]: h simplified under the conjuncts in s known to hold —
   g∧h ≡ g∧(given (conjuncts g) h). *)
and given s h =
  let known t = List.exists (fun q -> q.id = t.id) s in
  let refuted t = known (mk_not t) in
  let simp c =
    if known c then None
    else if refuted c then Some (ff ())
    else
      match c.node with
      | Bin (Ops.Or, Types.TBool, ds) ->
          if List.exists (fun d -> List.for_all known (conjuncts d)) ds then None
          else
            Some
              (mk_or
                 (ds
                 |> List.filter (fun d -> not (List.exists refuted (conjuncts d)))
                 |> List.map (fun d ->
                        mk_and
                          (List.filter (fun c -> not (known c)) (conjuncts d)))))
      | _ -> Some c
  in
  mk_and (List.filter_map simp (conjuncts h))

let mk_select c a b = mk_merge [ (c, a); (mk_not c, b) ]

(* ------------------------------------------------------------------ *)
(* Free variables and substitution                                     *)

let free_vars t =
  let seen = Hashtbl.create 64 in
  let acc = ref [] in
  let rec go t =
    if not (Hashtbl.mem seen t.id) then begin
      Hashtbl.add seen t.id ();
      match t.node with
      | FreeVar v -> acc := v :: !acc
      | Const _ | Param _ | GlobAddr _ | Query _ | SVar _ | AllocaBase _ | Nil _ -> ()
      | Bin (_, _, ts) | MathCall (_, ts) -> List.iter go ts
      | Cmp (_, a, b) -> go a; go b
      | Not a | EffectRes a -> go a
      | Cast (_, _, a) -> go a
      | Gep (p, i, _) -> go p; go i
      | Merge es -> List.iter (fun (g, v) -> go g; go v) es
      | Load (_, c, a, _) -> go c; go a
      | LoopOut (l, _) -> go l
      | Loop l ->
          List.iter go l.l_inits; List.iter go l.l_steps; go l.l_cond;
          List.iter go l.l_chains
      | ChainStore (p, g, a, v, _) -> go p; go g; go a; go v
      | ChainEffect (p, g, _, args) -> go p; go g; List.iter go args
      | ChainBarrier (p, g) -> go p; go g
      | ChainLoop (p, l) -> go p; go l
    end
  in
  go t;
  List.sort_uniq compare !acc

(* Substitute free loop-state variables. [binder v depth] renders the
   replacement at the given de-Bruijn depth (used when closing a loop
   summary); [plain] substitutes whole terms (used for signature
   unrolling, where replacements contain no SVars so capture cannot
   occur). Rebuilding goes through the smart constructors so the result
   is renormalized under the new identities. *)
let subst_free ~(f : int -> int -> term option) t0 =
  let memo : (int * int, term) Hashtbl.t = Hashtbl.create 64 in
  let rec go depth t =
    match Hashtbl.find_opt memo (depth, t.id) with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | FreeVar v -> ( match f v depth with Some r -> r | None -> t)
          | Const _ | Param _ | GlobAddr _ | Query _ | SVar _ | AllocaBase _ | Nil _ -> t
          | Bin (op, ty, ts) -> (
              let ts' = List.map (go depth) ts in
              match ts' with
              | [ a; b ] -> mk_bin op ty a b
              | _ -> mk_nary op ty ts')
          | Cmp (op, a, b) -> mk_cmp op (go depth a) (go depth b)
          | Not a -> mk_not (go depth a)
          | Cast (op, ty, a) -> mk_cast op ty (go depth a)
          | Gep (p, i, ty) -> mk_gep (go depth p) (go depth i) ty
          | MathCall (fn, ts) -> mk_math fn (List.map (go depth) ts)
          | Merge es -> mk_merge (List.map (fun (g, v) -> (go depth g, go depth v)) es)
          | Load (sp, c, a, ty) -> intern (Load (sp, go depth c, go depth a, ty))
          | EffectRes e -> intern (EffectRes (go depth e))
          | LoopOut (l, i) -> intern (LoopOut (go depth l, i))
          | Loop l ->
              intern
                (Loop
                   {
                     l_inits = List.map (go depth) l.l_inits;
                     l_steps = List.map (go (depth + 1)) l.l_steps;
                     l_cond = go (depth + 1) l.l_cond;
                     l_chains = List.map (go (depth + 1)) l.l_chains;
                   })
          | ChainStore (p, g, a, v, ty) ->
              intern (ChainStore (go depth p, go depth g, go depth a, go depth v, ty))
          | ChainEffect (p, g, fn, args) ->
              intern (ChainEffect (go depth p, go depth g, fn, List.map (go depth) args))
          | ChainBarrier (p, g) -> intern (ChainBarrier (go depth p, go depth g))
          | ChainLoop (p, l) -> intern (ChainLoop (go depth p, go depth l))
        in
        Hashtbl.add memo (depth, t.id) r;
        r
  in
  go 0 t0

let subst_map (m : (int * term) list) t =
  subst_free ~f:(fun v _ -> List.assoc_opt v m) t

(* ------------------------------------------------------------------ *)
(* Verdicts                                                            *)

type verdict = Proven | Unproven of string | Refuted of Finding.t

exception Refute of Finding.t
exception Give_up of string

type options = {
  unroll_cap : int; (* max symbolic iterations before summarizing *)
  inline_depth : int; (* max nested device-call inlining *)
  fuel : int; (* instruction-evaluation budget per side *)
  samples : int; (* concrete environments tried on a pure mismatch *)
}

let default_options = { unroll_cap = 64; inline_depth = 8; fuel = 400_000; samples = 24 }

type subst = {
  sub_params : (int * Konst.t) list; (* 0-based param position -> value *)
  sub_globals : (string * int64) list; (* extern global -> device address *)
}

let no_subst = { sub_params = []; sub_globals = [] }

(* ------------------------------------------------------------------ *)
(* Symbolic memory: one store chain per address space                  *)

type mem = { mg : term; ms : term; mp : term }

let chain_of mem = function
  | Types.AS_global -> mem.mg
  | Types.AS_shared -> mem.ms
  | Types.AS_scratch -> mem.mp

let set_chain mem sp c =
  match sp with
  | Types.AS_global -> { mem with mg = c }
  | Types.AS_shared -> { mem with ms = c }
  | Types.AS_scratch -> { mem with mp = c }

let prev_of c =
  match c.node with
  | ChainStore (p, _, _, _, _) | ChainEffect (p, _, _, _) | ChainBarrier (p, _)
  | ChainLoop (p, _) ->
      Some p
  | _ -> None

(* Base allocation + byte offset of an address term, when static. *)
let rec addr_info t =
  match t.node with
  | Gep (p, i, ety) -> (
      let base, off = addr_info p in
      match (i.node, off) with
      | Const (Konst.KInt (k, _)), Some o ->
          (base, Some (Int64.add o (Int64.mul k (Int64.of_int (Types.size_of ety)))))
      | _ -> (base, None))
  | Cast (Ops.Bitcast, _, x) -> addr_info x
  | _ -> (t, Some 0L)

(* The frontend types every pointer AS_global (allocas included); what
   actually distinguishes private storage is its base value. *)
let space_of_addr declared addr =
  match (addr_info addr : term * _) with
  | { node = AllocaBase _; _ }, _ -> Types.AS_scratch
  | _ -> declared

let definitely_disjoint a sa b sb =
  let ba, oa = addr_info a and bb, ob = addr_info b in
  let ranges_disjoint oa ob =
    match (oa, ob) with
    | Some x, Some y ->
        Int64.compare (Int64.add x (Int64.of_int sa)) y <= 0
        || Int64.compare (Int64.add y (Int64.of_int sb)) x <= 0
    | _ -> false
  in
  if ba.id = bb.id then ranges_disjoint oa ob
  else
    match (ba.node, bb.node) with
    | AllocaBase _, AllocaBase _ -> true (* distinct allocation sites *)
    | _ -> false

(* g already true under observation guard h? Syntactic implication on
   conjunct sets is all the evaluator needs: guards are built by the
   same constructors on both sides. *)
let implies h g =
  is_true g || g.id = h.id
  || List.for_all
       (fun c -> List.exists (fun c' -> c'.id = c.id) (conjuncts h))
       (conjuncts g)

(* Drop scratch-chain events that cannot alias [addr]; opaque scratch
   loads are keyed on this filtered chain so private traffic removed by
   mem2reg on one side cannot desynchronize the other. *)
let filter_scratch chain addr lsz =
  let rec filt c =
    match c.node with
    | ChainStore (prev, g, a, v, vty) ->
        let p = filt prev in
        if definitely_disjoint a (Types.size_of vty) addr lsz then p
        else intern (ChainStore (p, g, a, v, vty))
    | ChainEffect (prev, g, f, args) -> intern (ChainEffect (filt prev, g, f, args))
    | ChainLoop (prev, l) -> intern (ChainLoop (filt prev, l))
    | ChainBarrier (prev, _) -> filt prev
    | _ -> c
  in
  filt chain

(* Store-forwarding walk for private memory under observation guard
   [h]. Forwarded conditional stores produce the same guard-keyed
   Merge shape mem2reg's phis produce; a walk reaching the start of
   the chain mirrors mem2reg's zero default for load-before-store. *)
let scratch_load ~h chain addr ty =
  let lsz = Types.size_of ty in
  let opaque () = intern (Load (Types.AS_scratch, filter_scratch chain addr lsz, addr, ty)) in
  let rec walk c =
    match c.node with
    | Nil _ -> const (Konst.zero ty)
    | ChainStore (prev, g, a, v, vty) ->
        if a.id = addr.id && Types.equal vty ty then
          if implies h g then v
          else mk_merge [ (guard_and h g, v); (guard_andnot h g, walk prev) ]
        else if definitely_disjoint a (Types.size_of vty) addr lsz then walk prev
        else opaque ()
    | ChainBarrier (prev, _) -> walk prev
    | _ -> opaque ()
  in
  walk chain

(* Merge chains at a control-flow join: locate the deepest shared tail,
   then reapply each branch's suffix in a canonical order (sound: the
   suffix events carry mutually disjoint guards). *)
let merge_chains (all : (term * term) list) : term =
  let entries = List.filter (fun (g, _) -> not (is_false g)) all in
  match entries with
  | [] -> snd (List.hd all) (* join is unreachable; any chain will do *)
  | (_, c0) :: rest when List.for_all (fun (_, c) -> c.id = c0.id) rest -> c0
  | _ ->
      let chains =
        List.sort_uniq (fun a b -> compare a.id b.id) (List.map snd entries)
      in
      let ancestors c =
        let s = Hashtbl.create 16 in
        let rec go c =
          Hashtbl.replace s c.id ();
          match prev_of c with Some p -> go p | None -> ()
        in
        go c;
        s
      in
      let lca2 a b =
        let s = ancestors a in
        let rec walk c =
          if Hashtbl.mem s c.id then c
          else match prev_of c with Some p -> walk p | None -> c
        in
        walk b
      in
      let common =
        match chains with c :: tl -> List.fold_left lca2 c tl | [] -> assert false
      in
      let suffix c =
        (* nodes above the common tail, oldest-first *)
        let rec go c acc = if c.id = common.id then acc else go (Option.get (prev_of c)) (c :: acc) in
        go c []
      in
      let suffixes =
        chains
        |> List.map (fun c -> (List.map (fun n -> n.id) (suffix c), suffix c))
        |> List.filter (fun (_, s) -> s <> [])
        |> List.sort (fun (k1, _) (k2, _) -> compare k1 k2)
      in
      let reapply acc nodes =
        List.fold_left
          (fun acc n ->
            match n.node with
            | ChainStore (_, g, a, v, ty) -> intern (ChainStore (acc, g, a, v, ty))
            | ChainEffect (_, g, f, args) -> intern (ChainEffect (acc, g, f, args))
            | ChainBarrier (_, g) -> intern (ChainBarrier (acc, g))
            | ChainLoop (_, l) -> intern (ChainLoop (acc, l))
            | _ -> acc)
          acc nodes
      in
      List.fold_left (fun acc (_, s) -> reapply acc s) common suffixes

let merge_mems (entries : (term * mem) list) : mem =
  match entries with
  | [] -> Util.failf "Transval.merge_mems: no incoming edges"
  | [ (_, m) ] -> m
  | _ ->
      {
        mg = merge_chains (List.map (fun (g, m) -> (g, m.mg)) entries);
        ms = merge_chains (List.map (fun (g, m) -> (g, m.ms)) entries);
        mp = merge_chains (List.map (fun (g, m) -> (g, m.mp)) entries);
      }

(* ------------------------------------------------------------------ *)
(* The symbolic evaluator                                              *)

type ctx = {
  cm : Ir.modul;
  sub : subst;
  opts : options;
  mutable fuel : int;
  mutable serial : int; (* non-promotable alloca sites: stable across mem2reg *)
  mutable vserial : int; (* promotable sites: mem2reg erases them, ids negative *)
}

type frame = {
  ff : Ir.func;
  regs : term option array;
  mutable floc : (int * int) option;
  mutable fblk : string;
}

exception Bail (* abandon bounded unrolling, fall back to summary *)

let fv_counter = ref 0

let fresh_fv () =
  incr fv_counter;
  intern (FreeVar !fv_counter)

let refute_finding frame msg =
  Finding.mk ?loc:frame.floc ~kind:Finding.Transval_refuted ~severity:Finding.Error
    ~func:frame.ff.Ir.fname ~block:frame.fblk msg

let tick ctx =
  ctx.fuel <- ctx.fuel - 1;
  if ctx.fuel < 0 then raise (Give_up "evaluation budget exhausted")

let glob_term ctx g =
  match List.assoc_opt g ctx.sub.sub_globals with
  | Some addr ->
      (* mirror Specialize.link_globals_typed: a bitcast of the device
         address, typed as a pointer to the global's element type *)
      let gv = Ir.find_global ctx.cm g in
      let elem = match gv.Ir.gty with Types.TArr (e, _) -> e | t -> t in
      mk_cast Ops.Bitcast (Types.TPtr (elem, gv.Ir.gspace))
        (const (Konst.kint ~bits:64 addr))
  | None -> intern (GlobAddr g)

let ptr_space ctx frame op =
  match Ir.operand_ty ctx.cm frame.ff op with
  | Types.TPtr (_, sp) -> sp
  | t -> raise (Give_up ("store/load through non-pointer type " ^ Types.to_string t))

let rec eval_func ctx ~depth (f : Ir.func) ~(args : term list) ~guard0 ~mem0 :
    term option * mem =
  let frame =
    { ff = f; regs = Array.make (Ir.nregs f) None; floc = None; fblk = "entry" }
  in
  List.iteri
    (fun i (_, r) -> frame.regs.(r) <- Some (List.nth args i))
    f.Ir.params;
  let cfg = Cfg.build f in
  let dom = Dom.compute cfg in
  let li = Loopinfo.compute cfg dom in
  let promotable =
    lazy
      (List.filter_map
         (fun (d, ty) -> Some (d, ty))
         (Proteus_opt.Mem2reg.promotable_allocas f))
  in
  let rets : (term * term option * mem) list ref = ref [] in
  let ev = function
    | Ir.Reg r -> (
        match frame.regs.(r) with
        | Some t -> t
        | None ->
            raise
              (Refute (refute_finding frame (Printf.sprintf "use of undefined register %%r%d" r))))
    | Ir.Imm k -> const k
    | Ir.Glob g -> glob_term ctx g
  in
  let exec_instr gb mem instr =
    tick ctx;
    let set d t = frame.regs.(d) <- Some t in
    match instr with
    | Ir.IBin (d, op, a, b) ->
        set d (mk_bin op (Ir.reg_ty f d) (ev a) (ev b));
        mem
    | Ir.ICmp (d, op, a, b) ->
        set d (mk_cmp op (ev a) (ev b));
        mem
    | Ir.ISelect (d, c, x, y) ->
        set d (mk_select (ev c) (ev x) (ev y));
        mem
    | Ir.ICast (d, op, a) ->
        set d (mk_cast op (Ir.reg_ty f d) (ev a));
        mem
    | Ir.IGep (d, p, i) ->
        let elem =
          match Ir.operand_ty ctx.cm f p with
          | Types.TPtr (e, _) -> e
          | t -> raise (Give_up ("gep through non-pointer " ^ Types.to_string t))
        in
        set d (mk_gep (ev p) (ev i) elem);
        mem
    | Ir.ILoad (d, p) ->
        let addr = ev p in
        let sp = space_of_addr (ptr_space ctx frame p) addr in
        let ty = Ir.reg_ty f d in
        let v =
          match sp with
          | Types.AS_scratch -> scratch_load ~h:gb mem.mp addr ty
          | sp -> intern (Load (sp, chain_of mem sp, addr, ty))
        in
        set d v;
        mem
    | Ir.IStore (vop, pop) ->
        if is_false gb then mem
        else begin
          let addr = ev pop in
          let sp = space_of_addr (ptr_space ctx frame pop) addr in
          let vty = Ir.operand_ty ctx.cm f vop in
          let node = intern (ChainStore (chain_of mem sp, gb, addr, ev vop, vty)) in
          note_provenance node ~loc:frame.floc ~block:frame.fblk;
          set_chain mem sp node
        end
    | Ir.IAlloca (d, ty, _count) ->
        (* Promotable allocas get negative serials: mem2reg deletes
           them on the optimized side, so only the surviving (array /
           address-escaping) sites may count toward the stable numbering
           both sides must agree on. *)
        let sn =
          if List.mem_assoc d (Lazy.force promotable) then begin
            ctx.vserial <- ctx.vserial - 1;
            ctx.vserial
          end
          else begin
            ctx.serial <- ctx.serial + 1;
            ctx.serial
          end
        in
        set d (intern (AllocaBase (sn, ty)));
        mem
    | Ir.IPhi _ -> Util.failf "Transval: phi outside block entry"
    | Ir.ICall (dst, callee, cargs) -> (
        if callee = Ir.Intrinsics.dbg_loc then begin
          (match cargs with
          | [ Ir.Imm a; Ir.Imm b ] ->
              frame.floc <- Some (Int64.to_int (Konst.as_int a), Int64.to_int (Konst.as_int b))
          | _ -> ());
          mem
        end
        else if Ir.Intrinsics.is_gpu_query callee then begin
          (match dst with Some d -> set d (intern (Query callee)) | None -> ());
          mem
        end
        else if Ir.Intrinsics.is_math callee then begin
          (match dst with
          | Some d -> set d (mk_math callee (List.map ev cargs))
          | None -> ());
          mem
        end
        else if callee = Ir.Intrinsics.barrier then
          if is_false gb then mem
          else begin
            let bg = intern (ChainBarrier (mem.mg, gb)) in
            let bs = intern (ChainBarrier (mem.ms, gb)) in
            note_provenance bg ~loc:frame.floc ~block:frame.fblk;
            { mem with mg = bg; ms = bs }
          end
        else if Ir.Intrinsics.is_atomic callee then begin
          let sp =
            match cargs with
            | p :: _ -> space_of_addr (ptr_space ctx frame p) (ev p)
            | [] -> raise (Give_up "atomic arity")
          in
          if is_false gb then begin
            (match dst with Some d -> set d (intern (Merge [])) | None -> ());
            mem
          end
          else begin
            let node =
              intern (ChainEffect (chain_of mem sp, gb, callee, List.map ev cargs))
            in
            note_provenance node ~loc:frame.floc ~block:frame.fblk;
            (match dst with Some d -> set d (intern (EffectRes node)) | None -> ());
            set_chain mem sp node
          end
        end
        else
          match Ir.find_func_opt ctx.cm callee with
          | Some g when not g.Ir.is_decl ->
              if depth >= ctx.opts.inline_depth then
                raise (Give_up ("inline depth exceeded at " ^ callee));
              let ret, mem' =
                eval_func ctx ~depth:(depth + 1) g ~args:(List.map ev cargs)
                  ~guard0:gb ~mem0:mem
              in
              (match (dst, ret) with
              | Some d, Some v -> set d v
              | Some _, None -> raise (Give_up ("void call result used: " ^ callee))
              | None, _ -> ());
              mem'
          | _ ->
              (* opaque external call: clobbers global memory *)
              let node =
                intern (ChainEffect (mem.mg, gb, callee, List.map ev cargs))
              in
              note_provenance node ~loc:frame.floc ~block:frame.fblk;
              (match dst with Some d -> set d (intern (EffectRes node)) | None -> ());
              { mem with mg = node })
  in
  (* Evaluate an acyclic region (loops collapse through handle_loop) in
     RPO. [entry_edges] seed the region entry; returns edges that leave
     the region. Return sites accumulate in [rets]. *)
  let rec region_eval ~(region : Util.Sset.t) ~entry_label
      ~(entry_edges : (string * term * mem) list) :
      ((string * string) * term * mem) list =
    let edges : (string * string, term * mem) Hashtbl.t = Hashtbl.create 16 in
    let consumed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
    let exits = ref [] in
    let emit b l g mem =
      if Util.Sset.mem l region then Hashtbl.replace edges (b, l) (g, mem)
      else exits := ((b, l), g, mem) :: !exits
    in
    let order = List.filter (fun b -> Util.Sset.mem b region) cfg.Cfg.rpo in
    List.iter
      (fun b ->
        if not (Hashtbl.mem consumed b) then begin
          let incoming =
            (if b = entry_label then entry_edges else [])
            @ List.filter_map
                (fun p ->
                  match Hashtbl.find_opt edges (p, b) with
                  | Some (g, mem) -> Some (p, g, mem)
                  | None -> None)
                (Cfg.preds cfg b)
          in
          if incoming <> [] then begin
            let loop_here =
              List.find_opt
                (fun (l : Loopinfo.loop) ->
                  l.Loopinfo.header = b
                  && Util.Sset.for_all (fun x -> Util.Sset.mem x region) l.Loopinfo.body)
                li.Loopinfo.loops
            in
            match loop_here with
            | Some l ->
                let exit_label, g, mem = handle_loop ~incoming l in
                Util.Sset.iter (fun x -> Hashtbl.replace consumed x ()) l.Loopinfo.body;
                emit b exit_label g mem
            | None ->
                let blk = Ir.find_block f b in
                frame.fblk <- b;
                let gb = mk_or (List.map (fun (_, g, _) -> g) incoming) in
                (* phis read per-edge values *)
                List.iter
                  (function
                    | Ir.IPhi (d, inc) ->
                        let entries =
                          List.filter_map
                            (fun (p, g, _) ->
                              match List.assoc_opt p inc with
                              | Some op -> Some (g, ev op)
                              | None ->
                                  if is_false g then None
                                  else
                                    raise
                                      (Refute
                                         (refute_finding frame
                                            (Printf.sprintf
                                               "phi %%r%d missing incoming edge from block %s"
                                               d p))))
                            incoming
                        in
                        frame.regs.(d) <- Some (mk_merge entries)
                    | _ -> ())
                  blk.Ir.insts;
                let mem = merge_mems (List.map (fun (_, g, m) -> (g, m)) incoming) in
                let mem =
                  List.fold_left
                    (fun mem i ->
                      match i with Ir.IPhi _ -> mem | i -> exec_instr gb mem i)
                    mem blk.Ir.insts
                in
                (match blk.Ir.term with
                | Ir.TBr l -> emit b l gb mem
                | Ir.TCondBr (c, t, e) ->
                    if t = e then emit b t gb mem
                    else begin
                      let ct = ev c in
                      emit b t (mk_and [ gb; ct ]) mem;
                      emit b e (mk_and [ gb; mk_not ct ]) mem
                    end
                | Ir.TRet v -> rets := (gb, Option.map ev v, mem) :: !rets
                | Ir.TUnreachable -> ())
          end
        end)
      order;
    !exits
  (* Natural-loop cutpoint: bounded unrolling when every exit decision
     folds to a constant, canonical summarization otherwise. *)
  and handle_loop ~(incoming : (string * term * mem) list) (l : Loopinfo.loop) :
      string * term * mem =
    let header = l.Loopinfo.header in
    let hb = Ir.find_block f header in
    let phis =
      List.filter_map
        (function Ir.IPhi (d, inc) -> Some (d, inc) | _ -> None)
        hb.Ir.insts
    in
    let body_target, exit_label, cond_op, cond_positive =
      match hb.Ir.term with
      | Ir.TCondBr (c, t, e) -> (
          match
            (Util.Sset.mem t l.Loopinfo.body, Util.Sset.mem e l.Loopinfo.body)
          with
          | true, false -> (t, e, c, true)
          | false, true -> (e, t, c, false)
          | _ -> raise (Give_up ("unsupported loop shape at " ^ header)))
      | _ -> raise (Give_up ("loop header without exit test at " ^ header))
    in
    (* all exits must leave from the header *)
    Util.Sset.iter
      (fun b ->
        if b <> header then
          List.iter
            (fun s ->
              if not (Util.Sset.mem s l.Loopinfo.body) then
                raise (Give_up ("loop exit outside header at " ^ b)))
            (Cfg.succs cfg b))
      l.Loopinfo.body;
    let g0 = mk_or (List.map (fun (_, g, _) -> g) incoming) in
    let entry_mem = merge_mems (List.map (fun (_, g, m) -> (g, m)) incoming) in
    let body_region = Util.Sset.remove header l.Loopinfo.body in
    let phi_entry_value (_, inc) =
      mk_merge
        (List.filter_map
           (fun (p, g, _) ->
             match List.assoc_opt p inc with
             | Some op -> Some (g, ev op)
             | None ->
                 if is_false g then None
                 else
                   raise
                     (Refute
                        (refute_finding frame
                           ("loop phi missing incoming edge from block " ^ p))))
           incoming)
    in
    let eval_header_insts gb mem =
      frame.fblk <- header;
      List.fold_left
        (fun mem i -> match i with Ir.IPhi _ -> mem | i -> exec_instr gb mem i)
        mem hb.Ir.insts
    in
    let back_edges_of exits =
      List.map
        (fun ((latch, target), g, mem) ->
          if target <> header then
            raise (Give_up ("loop exit outside header at " ^ latch));
          (latch, g, mem))
        exits
    in
    let phi_step_value backs (d, inc) =
      mk_merge
        (List.filter_map
           (fun (latch, g, _) ->
             match List.assoc_opt latch inc with
             | Some op -> Some (g, ev op)
             | None ->
                 if is_false g then None
                 else
                   raise
                     (Refute
                        (refute_finding frame
                           (Printf.sprintf "phi %%r%d missing incoming edge from block %s"
                              d latch))))
           backs)
    in
    let snapshot = Array.copy frame.regs in
    let attempt_unroll () =
      let phi_vals = ref (List.map phi_entry_value phis) in
      let mem = ref entry_mem in
      let iter = ref 0 in
      let result = ref None in
      while !result = None do
        List.iter2 (fun (d, _) v -> frame.regs.(d) <- Some v) phis !phi_vals;
        let mem1 = eval_header_insts g0 !mem in
        let ct = ev cond_op in
        let continue_ =
          match ct.node with
          | Const (Konst.KBool b) -> if cond_positive then b else not b
          | _ -> raise Bail
        in
        if not continue_ then result := Some (exit_label, g0, mem1)
        else begin
          incr iter;
          if !iter > ctx.opts.unroll_cap then raise Bail;
          if Util.Sset.is_empty body_region then
            (* self-loop on the header: phis step from the header itself *)
            begin
              phi_vals := List.map (phi_step_value [ (header, g0, mem1) ]) phis;
              mem := mem1
            end
          else begin
            let exits =
              region_eval ~region:body_region ~entry_label:body_target
                ~entry_edges:[ (header, g0, mem1) ]
            in
            let backs = back_edges_of exits in
            if backs = [] then raise Bail;
            phi_vals := List.map (phi_step_value backs) phis;
            mem := merge_mems (List.map (fun (_, g, m) -> (g, m)) backs)
          end
        end
      done;
      Option.get !result
    in
    try attempt_unroll ()
    with Bail ->
      Array.blit snapshot 0 frame.regs 0 (Array.length snapshot);
      summarize_loop ~incoming ~l ~header ~hb ~phis ~body_target ~exit_label
        ~cond_op ~cond_positive ~g0 ~entry_mem ~body_region ~phi_entry_value
        ~eval_header_insts ~back_edges_of ~phi_step_value ~promotable
  and summarize_loop ~incoming:_ ~l ~header ~hb:_ ~phis ~body_target ~exit_label
      ~cond_op ~cond_positive ~g0 ~entry_mem ~body_region ~phi_entry_value
      ~eval_header_insts ~back_edges_of ~phi_step_value ~promotable =
    (* State variables: header phis, then promotable scratch slots that
       the body stores to. Slot state mirrors what mem2reg would have
       promoted, so an unoptimized side and an SSA side summarize
       identically. *)
    let slot_regs =
      let prom = Lazy.force promotable in
      let stored = Hashtbl.create 8 in
      Util.Sset.iter
        (fun b ->
          let blk = Ir.find_block f b in
          List.iter
            (function
              | Ir.IStore (_, Ir.Reg a) when List.mem_assoc a prom ->
                  Hashtbl.replace stored a ()
              | _ -> ())
            blk.Ir.insts)
        l.Loopinfo.body;
      List.filter (fun (a, _) -> Hashtbl.mem stored a) prom
      |> List.sort (fun (a, _) (b, _) -> compare a b)
    in
    let slots =
      (* Allocas first materialized inside the body are iteration-local
         (their state cannot flow around the back edge); only slots
         allocated before the loop carry state. *)
      List.filter_map
        (fun (a, ty) ->
          match frame.regs.(a) with
          | Some ({ node = AllocaBase _; _ } as addr) -> Some (a, ty, addr)
          | _ -> None)
        slot_regs
    in
    let nphis = List.length phis in
    let nvars = nphis + List.length slots in
    let fvs = Array.init nvars (fun _ -> fresh_fv ()) in
    let fv_ids =
      Array.map (fun t -> match t.node with FreeVar v -> v | _ -> assert false) fvs
    in
    let inits =
      Array.of_list
        (List.map phi_entry_value phis
        @ List.map (fun (_, ty, addr) -> scratch_load ~h:g0 entry_mem.mp addr ty) slots)
    in
    (* relative body evaluation over the state placeholders *)
    List.iteri (fun i (d, _) -> frame.regs.(d) <- Some fvs.(i)) phis;
    let overlay =
      List.fold_left
        (fun acc (i, (_, ty, addr)) ->
          intern (ChainStore (acc, tt (), addr, fvs.(nphis + i), ty)))
        entry_mem.mp
        (List.mapi (fun i s -> (i, s)) slots)
    in
    let mem_rel =
      { mg = intern (Nil Types.AS_global); ms = intern (Nil Types.AS_shared); mp = overlay }
    in
    (* The body is evaluated once under the loop's entry guard: an
       iteration only runs for lanes that reached the header, and
       keeping g0 lets pre-loop conditional stores forward cleanly. *)
    let memh = eval_header_insts g0 mem_rel in
    let ct = ev cond_op in
    let cond = if cond_positive then ct else mk_not ct in
    let backs =
      if Util.Sset.is_empty body_region then [ (header, g0, memh) ]
      else
        back_edges_of
          (region_eval ~region:body_region ~entry_label:body_target
             ~entry_edges:[ (header, g0, memh) ])
    in
    if backs = [] then raise (Give_up ("loop without back edge at " ^ header));
    let steps =
      Array.of_list
        (List.map (phi_step_value backs) phis
        @ List.map
            (fun (_, ty, addr) ->
              mk_merge
                (List.map (fun (_, g, m) -> (g, scratch_load ~h:g m.mp addr ty)) backs))
            slots)
    in
    let mem_exit = merge_mems (List.map (fun (_, g, m) -> (g, m)) backs) in
    (* relative scratch events: body stores minus slot state and minus
       stores to promotable (mem2reg-erasable) sites — those are
       iteration-local or covered by slot summaries on both sides *)
    let volatile_base a =
      match addr_info a with
      | { node = AllocaBase (sn, _); _ }, _ -> sn < 0
      | _ -> false
    in
    let p_rel =
      let rec strip c =
        if c.id = overlay.id then intern (Nil Types.AS_scratch)
        else
          match c.node with
          | ChainStore (prev, g, a, v, ty) ->
              let p = strip prev in
              if volatile_base a then p
              else intern (ChainStore (p, g, a, v, ty))
          | ChainEffect (prev, g, fc, args) -> intern (ChainEffect (strip prev, g, fc, args))
          | ChainBarrier (prev, _) -> strip prev
          | ChainLoop (prev, lp) -> intern (ChainLoop (strip prev, lp))
          | _ -> intern (Nil Types.AS_scratch)
      in
      strip mem_exit.mp
    in
    let chains_rel = [ mem_exit.mg; mem_exit.ms; p_rel ] in
    (* dependency closure and canonical ordering *)
    let own_vars t =
      List.filter_map
        (fun v -> Array.to_list fv_ids |> List.mapi (fun i x -> (i, x))
                  |> List.find_opt (fun (_, x) -> x = v) |> Option.map fst)
        (free_vars t)
    in
    let closure seed =
      let inset = Array.make nvars false in
      List.iter (fun i -> inset.(i) <- true) seed;
      let changed = ref true in
      while !changed do
        changed := false;
        for i = 0 to nvars - 1 do
          if inset.(i) then
            List.iter
              (fun j -> if not inset.(j) then (inset.(j) <- true; changed := true))
              (own_vars steps.(i))
        done
      done;
      List.filter (fun i -> inset.(i)) (List.init nvars (fun i -> i))
    in
    let cond_set = closure (own_vars cond) in
    (* three-step signatures give each variable a canonical identity *)
    let map0 = Array.to_list (Array.mapi (fun i v -> (fv_ids.(i), v)) inits) in
    let v1 = Array.map (fun s -> subst_map map0 s) steps in
    let map1 = Array.to_list (Array.mapi (fun i v -> (fv_ids.(i), v)) v1) in
    let v2 = Array.map (fun s -> subst_map map1 s) steps in
    let sig_of i = (inits.(i).id, v1.(i).id, v2.(i).id) in
    let order_subset s =
      let sorted = List.sort (fun a b -> compare (sig_of a) (sig_of b)) s in
      let rec tied = function
        | a :: b :: _ when sig_of a = sig_of b -> true
        | _ :: tl -> tied tl
        | [] -> false
      in
      if tied sorted then
        raise (Give_up ("tied loop-state signatures at " ^ header));
      sorted
    in
    let project_memo = Hashtbl.create 8 in
    let project subset ~chains =
      let subset = List.sort_uniq compare (subset @ cond_set) in
      let key = (subset, chains <> []) in
      match Hashtbl.find_opt project_memo key with
      | Some t -> t
      | None ->
          let ordered = order_subset subset in
          let posn = List.mapi (fun pos i -> (i, pos)) ordered in
          let close t =
            subst_free
              ~f:(fun v depth ->
                Array.to_list fv_ids
                |> List.mapi (fun i x -> (i, x))
                |> List.find_opt (fun (_, x) -> x = v)
                |> Option.map (fun (i, _) ->
                       match List.assoc_opt i posn with
                       | Some pos -> intern (SVar (depth, pos))
                       | None ->
                           raise
                             (Give_up ("loop state escapes its closure at " ^ header))))
              t
          in
          let t =
            intern
              (Loop
                 {
                   l_inits = List.map (fun i -> inits.(i)) ordered;
                   l_steps = List.map (fun i -> close steps.(i)) ordered;
                   l_cond = close cond;
                   l_chains = List.map close chains;
                 })
          in
          Hashtbl.add project_memo key t;
          t
    in
    let position_in subset i =
      let ordered = order_subset (List.sort_uniq compare (subset @ cond_set)) in
      let rec find pos = function
        | j :: _ when j = i -> pos
        | _ :: tl -> find (pos + 1) tl
        | [] -> raise (Give_up "loop output missing from projection")
      in
      find 0 ordered
    in
    let out_term i =
      let subset = closure [ i ] in
      intern (LoopOut (project subset ~chains:[], position_in subset i))
    in
    (* bind loop outputs *)
    List.iteri (fun i (d, _) -> frame.regs.(d) <- Some (out_term i)) phis;
    let has_events = List.exists (fun c -> match c.node with Nil _ -> false | _ -> true) chains_rel in
    let event_loop =
      if has_events then
        Some (project (closure (List.concat_map own_vars chains_rel)) ~chains:chains_rel)
      else None
    in
    let append_loop chain rel =
      match (event_loop, rel.node) with
      | Some lp, (ChainStore _ | ChainEffect _ | ChainBarrier _ | ChainLoop _) ->
          let node = intern (ChainLoop (chain, lp)) in
          note_provenance node ~loc:frame.floc ~block:header;
          node
      | _ -> chain
    in
    let mem' =
      {
        mg = append_loop entry_mem.mg mem_exit.mg;
        ms = append_loop entry_mem.ms mem_exit.ms;
        mp = append_loop entry_mem.mp p_rel;
      }
    in
    let mem' =
      List.fold_left
        (fun m (j, (_, ty, addr)) ->
          let node =
            intern (ChainStore (m.mp, g0, addr, out_term (nphis + j), ty))
          in
          { m with mp = node })
        mem'
        (List.mapi (fun j s -> (j, s)) slots)
    in
    (exit_label, g0, mem')
  in
  let region = Util.Sset.of_list cfg.Cfg.rpo in
  let entry_label = (Ir.entry f).Ir.label in
  let _exits =
    region_eval ~region ~entry_label ~entry_edges:[ ("<entry>", guard0, mem0) ]
  in
  match !rets with
  | [] -> raise (Give_up ("no return path in " ^ f.Ir.fname))
  | rs ->
      let mem = merge_mems (List.map (fun (g, _, m) -> (g, m)) rs) in
      let ret =
        if Types.equal f.Ir.ret Types.TVoid then None
        else
          Some
            (mk_merge
               (List.filter_map
                  (fun (g, v, _) -> match v with Some v -> Some (g, v) | None -> None)
                  rs))
      in
      (ret, mem)

(* ------------------------------------------------------------------ *)
(* Kernel summaries                                                    *)

type summary = { sum_ret : term option; sum_g : term; sum_s : term }

let summarize ~opts ~sub m sym : summary =
  let f = Ir.find_func m sym in
  if f.Ir.is_decl then raise (Give_up (sym ^ " is a declaration"));
  let ctx = { cm = m; sub; opts; fuel = opts.fuel; serial = 0; vserial = 0 } in
  let args =
    List.mapi
      (fun i (_, r) ->
        match List.assoc_opt i sub.sub_params with
        | Some k -> (
            match Ir.reg_ty f r with
            (* mirror Specialize.fold_arguments: pointer spec values
               arrive as a bitcast of the raw device address *)
            | Types.TPtr _ as pty -> mk_cast Ops.Bitcast pty (const k)
            | _ -> const k)
        | None -> intern (Param (i, Ir.reg_ty f r)))
      f.Ir.params
  in
  let mem0 =
    {
      mg = intern (Nil Types.AS_global);
      ms = intern (Nil Types.AS_shared);
      mp = intern (Nil Types.AS_scratch);
    }
  in
  let ret, mem = eval_func ctx ~depth:0 f ~args ~guard0:(tt ()) ~mem0 in
  { sum_ret = ret; sum_g = mem.mg; sum_s = mem.ms }

(* ------------------------------------------------------------------ *)
(* Concrete sampling: refute a pure mismatch with a counterexample      *)

exception No_eval

let is_pure t =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | Const _ | Param _ | GlobAddr _ | Query _ -> true
          | Bin (_, _, ts) | MathCall (_, ts) -> List.for_all go ts
          | Cmp (_, a, b) -> go a && go b
          | Not a | Cast (_, _, a) -> go a
          | Gep (p, i, _) -> go p && go i
          | Merge es -> List.for_all (fun (g, v) -> go g && go v) es
          | FreeVar _ | SVar _ | AllocaBase _ | Load _ | EffectRes _ | LoopOut _
          | Loop _ | Nil _ | ChainStore _ | ChainEffect _ | ChainBarrier _
          | ChainLoop _ ->
              false
        in
        Hashtbl.add memo t.id r;
        r
  in
  go t

type cenv = {
  e_param : int -> Types.ty -> Konst.t;
  e_query : string -> Konst.t;
  e_glob : string -> Konst.t;
}

(* [special] extends evaluation to nodes ceval alone cannot handle
   (the memory-modeled counterexample sampler below): it receives the
   memoized evaluator for subterms and returns [Some k] to override. *)
let ceval ?(special = fun _ _ -> None) env t0 =
  let memo = Hashtbl.create 64 in
  let rec go t =
    match Hashtbl.find_opt memo t.id with
    | Some k -> k
    | None ->
        let k =
          match special go t with
          | Some k -> k
          | None -> (
              match t.node with
          | Const k -> k
          | Param (i, ty) -> env.e_param i ty
          | GlobAddr g -> env.e_glob g
          | Query q -> env.e_query q
          | Bin (op, _, ts) -> (
              match ts with
              | hd :: tl -> List.fold_left (fun acc x -> Konst.binop op acc (go x)) (go hd) tl
              | [] -> raise No_eval)
          | Cmp (op, a, b) -> Konst.cmpop op (go a) (go b)
          | Not a -> (
              match go a with Konst.KBool b -> Konst.kbool (not b) | _ -> raise No_eval)
          | Cast (op, ty, a) -> Konst.cast op (go a) ty
          | Gep (p, i, ety) -> (
              match go p with
              | Konst.KInt (pv, _) ->
                  Konst.kint ~bits:64
                    (Int64.add pv
                       (Int64.mul (Konst.as_int (go i))
                          (Int64.of_int (Types.size_of ety))))
              | _ -> raise No_eval)
          | MathCall (f, ts) -> Interp.eval_math f (List.map go ts)
          | Merge es -> (
              match
                List.find_opt
                  (fun (g, _) -> match go g with Konst.KBool b -> b | _ -> false)
                  es
              with
              | Some (_, v) -> go v
              | None -> raise No_eval)
          | _ -> raise No_eval)
        in
        Hashtbl.add memo t.id k;
        k
  in
  go t0

(* splitmix64: deterministic, seed-indexed pseudo-random environments *)
let splitmix s =
  let z = Int64.add s 0x9E3779B97F4A7C15L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let hash_str s =
  String.fold_left
    (fun h c -> Int64.add (Int64.mul h 131L) (Int64.of_int (Char.code c)))
    7L s

let sample_value raw ty =
  match ty with
  | Types.TBool -> Konst.kbool (Int64.logand raw 1L = 0L)
  | Types.TInt b ->
      (* bias toward small magnitudes so off-by-one differences show *)
      if Int64.logand raw 7L = 0L then Konst.kint ~bits:b (Int64.rem raw 7L)
      else Konst.kint ~bits:b raw
  | Types.TFloat b ->
      let v = Int64.to_float (Int64.rem raw 65536L) /. 256.0 in
      Konst.KFloat ((if b = 32 then Util.to_f32 v else v), b)
  | Types.TPtr _ ->
      Konst.kint ~bits:64 (Int64.add 4096L (Int64.logand raw 0xFFF0L))
  | _ -> raise No_eval

let sample_env seed =
  let draw salt = splitmix (Int64.add (Int64.mul (Int64.of_int seed) 1000003L) salt) in
  {
    e_param = (fun i ty -> sample_value (draw (Int64.of_int ((2 * i) + 1))) ty);
    e_query =
      (fun q ->
        Konst.kint ~bits:32
          (Int64.rem (Int64.logand (draw (hash_str q)) Int64.max_int) 128L));
    e_glob =
      (fun g ->
        Konst.kint ~bits:64
          (Int64.add 65536L (Int64.logand (draw (hash_str g)) 0xFFFF0L)));
  }

(* Returns a counterexample (sample index, reference value, candidate
   value) when the two pure terms disagree on some sampled environment. *)
let counterexample ~samples tref tcand =
  if not (is_pure tref && is_pure tcand) then None
  else begin
    let found = ref None in
    (try
       for s = 1 to samples do
         let env = sample_env s in
         match
           try Some (ceval env tref, ceval env tcand) with No_eval -> None
         with
         | Some (a, b) when not (Konst.equal a b) ->
             found := Some (s, a, b);
             raise Exit
         | _ -> ()
       done
     with Exit -> ());
    !found
  end

(* ------------------------------------------------------------------ *)
(* Term rendering (diagnostics and tests)                              *)

let rec term_to_string ?(depth = 8) t =
  let go x = term_to_string ~depth:(depth - 1) x in
  let list xs = String.concat " " (List.map go xs) in
  if depth <= 0 then Printf.sprintf "#%d" t.id
  else
    match t.node with
    | Const k -> Konst.to_string k
    | Param (i, ty) -> Printf.sprintf "arg%d:%s" i (Types.to_string ty)
    | GlobAddr g -> "@" ^ g
    | Query q -> q
    | FreeVar v -> Printf.sprintf "fv%d" v
    | SVar (d, i) -> Printf.sprintf "sv%d.%d" d i
    | AllocaBase (k, ty) -> Printf.sprintf "alloca%d:%s" k (Types.to_string ty)
    | Bin (op, _, ts) -> Printf.sprintf "(%s %s)" (Ops.binop_to_string op) (list ts)
    | Cmp (op, a, b) -> Printf.sprintf "(%s %s %s)" (Ops.cmpop_to_string op) (go a) (go b)
    | Not a -> Printf.sprintf "(not %s)" (go a)
    | Cast (op, ty, a) ->
        Printf.sprintf "(%s:%s %s)" (Ops.castop_to_string op) (Types.to_string ty) (go a)
    | Gep (p, i, ty) ->
        Printf.sprintf "(gep:%s %s %s)" (Types.to_string ty) (go p) (go i)
    | MathCall (f, ts) -> Printf.sprintf "(%s %s)" f (list ts)
    | Merge es ->
        Printf.sprintf "(merge %s)"
          (String.concat " "
             (List.map (fun (g, v) -> Printf.sprintf "[%s -> %s]" (go g) (go v)) es))
    | Load (_, c, a, ty) ->
        Printf.sprintf "(load:%s %s @%s)" (Types.to_string ty) (go a) (go c)
    | EffectRes e -> Printf.sprintf "(effect-res %s)" (go e)
    | LoopOut (l, i) -> Printf.sprintf "(loop-out %d %s)" i (go l)
    | Loop l ->
        Printf.sprintf "(loop inits[%s] steps[%s] cond %s chains[%s])"
          (list l.l_inits) (list l.l_steps) (go l.l_cond) (list l.l_chains)
    | Nil _ -> "nil"
    | ChainStore (p, g, a, v, ty) ->
        Printf.sprintf "(store:%s %s <- %s if %s @%s)" (Types.to_string ty) (go a)
          (go v) (go g) (go p)
    | ChainEffect (p, g, f, args) ->
        Printf.sprintf "(effect %s %s if %s @%s)" f (list args) (go g) (go p)
    | ChainBarrier (p, g) -> Printf.sprintf "(barrier if %s @%s)" (go g) (go p)
    | ChainLoop (p, l) -> Printf.sprintf "(chain-loop %s @%s)" (go l) (go p)

(* ------------------------------------------------------------------ *)
(* Summary comparison                                                  *)

let prov_of ids =
  let loc = List.find_map (fun i -> Hashtbl.find_opt loc_tbl i) ids in
  let blk =
    match List.find_map (fun i -> Hashtbl.find_opt blk_tbl i) ids with
    | Some b -> b
    | None -> "<summary>"
  in
  (loc, blk)

let chain_nodes c =
  let rec go c acc =
    match prev_of c with Some p -> go p (c :: acc) | None -> acc
  in
  go c []

let describe_node t =
  match t.node with
  | ChainStore (_, _, _, _, ty) -> "store of " ^ Types.to_string ty
  | ChainEffect (_, _, f, _) -> "effect call " ^ f
  | ChainBarrier _ -> "barrier"
  | ChainLoop _ -> "loop-carried events"
  | Nil _ -> "empty chain"
  | _ -> "value"

let refuted ~sym ~ids msg =
  let loc, blk = prov_of ids in
  Refuted
    (Finding.mk ?loc ~kind:Finding.Transval_refuted ~severity:Finding.Error
       ~func:sym ~block:blk msg)

(* Memory-modeled counterexample for impure values.  When every load
   in both terms reads global memory through the *initial* [Nil] chain
   state, that memory is a universally-quantified input: model it as a
   sampled address -> value function (consistent within one sample, so
   equal addresses always read equal values) and evaluate both sides
   under it.  A disagreement is then a genuine counterexample - there
   exists an input memory and environment separating the two kernels.
   Loads through any non-Nil chain disable the refinement: downstream
   of a ChainStore prefix the sampled function could contradict the
   recorded store history (a forwarded load versus the very value a
   common store wrote), and loads from distinct chain states or
   non-global spaces could sample mutually inconsistent memories -
   either way manufacturing an infeasible "counterexample" and an
   unsound refutation. *)
let counterexample_mem ~samples tref tcand =
  let cid = ref None in
  let seen = Hashtbl.create 64 in
  let rec mod_loads t =
    match Hashtbl.find_opt seen t.id with
    | Some r -> r
    | None ->
        let r =
          match t.node with
          | Const _ | Param _ | GlobAddr _ | Query _ -> true
          | Bin (_, _, ts) | MathCall (_, ts) -> List.for_all mod_loads ts
          | Cmp (_, a, b) -> mod_loads a && mod_loads b
          | Not a | Cast (_, _, a) -> mod_loads a
          | Gep (p, i, _) -> mod_loads p && mod_loads i
          | Merge es -> List.for_all (fun (g, v) -> mod_loads g && mod_loads v) es
          | Load (Types.AS_global, ({ node = Nil _; _ } as c), a, _) -> (
              match !cid with
              | None ->
                  cid := Some c.id;
                  mod_loads a
              | Some i -> i = c.id && mod_loads a)
          | _ -> false
        in
        Hashtbl.add seen t.id r;
        r
  in
  if not (mod_loads tref && mod_loads tcand) then None
  else
    match !cid with
    | None -> None (* no loads at all: the pure sampler already ran *)
    | Some chain_id ->
        let found = ref None in
        (try
           for s = 1 to samples do
             let env = sample_env s in
             let special go t =
               match t.node with
               | Load (Types.AS_global, c, a, ty) when c.id = chain_id -> (
                   match go a with
                   | Konst.KInt (av, _) ->
                       Some
                         (sample_value
                            (splitmix
                               (Int64.logxor
                                  (Int64.mul 0x2545F4914F6CDD1DL av)
                                  (Int64.of_int (s * 65599))))
                            ty)
                   | _ -> None)
               | _ -> None
             in
             match
               try
                 Some (ceval ~special env tref, ceval ~special env tcand)
               with No_eval -> None
             with
             | Some (a, b) when not (Konst.equal a b) ->
                 found := Some (s, a, b);
                 raise Exit
             | _ -> ()
           done
         with Exit -> ());
        !found

let value_mismatch ~opts ~sym ~ids ~what tref tcand =
  match counterexample ~samples:opts.samples tref tcand with
  | Some (s, a, b) ->
      refuted ~sym ~ids
        (Printf.sprintf "%s differs: sample #%d gives %s (reference) vs %s (candidate)"
           what s (Konst.to_string a) (Konst.to_string b))
  | None ->
      if is_pure tref && is_pure tcand then
        Unproven
          (Printf.sprintf "%s differs structurally; no counterexample in %d samples"
             what opts.samples)
      else
        match counterexample_mem ~samples:opts.samples tref tcand with
        | Some (s, a, b) ->
            refuted ~sym ~ids
              (Printf.sprintf
                 "%s differs under a sampled memory model: sample #%d gives %s \
                  (reference) vs %s (candidate)"
                 what s (Konst.to_string a) (Konst.to_string b))
        | None -> Unproven (what ^ " differs and involves memory or loop state")

let diff_chain ~opts ~sym ~space cref ccand =
  (* strip the common oldest prefix, then compare event-by-event *)
  let rec strip lr lc =
    match (lr, lc) with
    | r :: lr', c :: lc' when r.id = c.id -> strip lr' lc'
    | _ -> (lr, lc)
  in
  let lr, lc = strip (chain_nodes cref) (chain_nodes ccand) in
  match (lr, lc) with
  | [], [] -> Proven
  | r :: _, [] ->
      Unproven
        (Printf.sprintf "candidate drops a %s event (%s)" space (describe_node r))
  | [], c :: _ ->
      Unproven
        (Printf.sprintf "candidate adds a %s event (%s)" space (describe_node c))
  | r :: _, c :: _ -> (
      match (r.node, c.node) with
      | ChainStore (_, gr, ar, vr, tyr), ChainStore (_, gc, ac, vc, tyc)
        when ar.id = ac.id && gr.id = gc.id && Types.equal tyr tyc ->
          value_mismatch ~opts ~sym ~ids:[ c.id; r.id ]
            ~what:("stored " ^ space ^ " value") vr vc
      | ChainStore (_, gr, ar, _, _), ChainStore (_, gc, ac, _, _) when ar.id = ac.id
        ->
          if gr.id <> gc.id then
            value_mismatch ~opts ~sym ~ids:[ c.id; r.id ]
              ~what:("guard of " ^ space ^ " store") gr gc
          else Unproven ("mismatched " ^ space ^ " store")
      | _ ->
          Unproven
            (Printf.sprintf "%s event mismatch: %s (reference) vs %s (candidate)"
               space (describe_node r) (describe_node c)))

let compare_summaries ~opts ~sym sref scand =
  let ret_eq =
    match (sref.sum_ret, scand.sum_ret) with
    | None, None -> true
    | Some a, Some b -> a.id = b.id
    | _ -> false
  in
  if ret_eq && sref.sum_g.id = scand.sum_g.id && sref.sum_s.id = scand.sum_s.id then
    Proven
  else if sref.sum_g.id <> scand.sum_g.id then
    diff_chain ~opts ~sym ~space:"global" sref.sum_g scand.sum_g
  else if sref.sum_s.id <> scand.sum_s.id then
    diff_chain ~opts ~sym ~space:"shared" sref.sum_s scand.sum_s
  else
    match (sref.sum_ret, scand.sum_ret) with
    | Some a, Some b ->
        value_mismatch ~opts ~sym ~ids:[ b.id; a.id ] ~what:"return value" a b
    | _ -> Unproven "return arity mismatch"

(* ------------------------------------------------------------------ *)
(* Public API                                                          *)

exception Ref_failed of string

(* The term universe (intern/provenance/assume tables, free-variable
   counter) is process-global mutable state, so validations are
   single-flight: one lock serializes every [check_kernel] against the
   concurrent callers a JIT service has (background tier compiles on
   pool domains, the multi-tenant serve loop fanning sessions across
   domains). Each validation starts from a fresh universe — the tables
   would otherwise retain every validated kernel's terms for the life
   of the process, and [note_provenance]'s first-writer-wins policy
   would let one kernel's file:line bleed into another's refutation.
   [next_id] is deliberately NOT reset: ids stay monotonic so a term a
   caller retained across validations (tests) can never share an id
   with a structurally different fresh term. *)
let engine_lock = Mutex.create ()

let reset_universe () =
  Hashtbl.reset intern_tbl;
  Hashtbl.reset loc_tbl;
  Hashtbl.reset blk_tbl;
  Hashtbl.reset assume_memo;
  fv_counter := 0

(* Validate [candidate]'s kernel [sym] against [reference]'s. [subst]
   carries specialization bindings applied to the reference side (the
   candidate is expected to have them folded in already). The reference
   is evaluated first so its dbg.loc markers win the provenance tables
   — O3 strips debug markers from the candidate. *)
let check_kernel ?(opts = default_options) ?(subst = no_subst) ~reference
    ~candidate sym : verdict =
  Mutex.protect engine_lock @@ fun () ->
  reset_universe ();
  try
    let sref =
      try summarize ~opts ~sub:subst reference sym
      with Refute f ->
        raise (Ref_failed ("reference evaluation failed: " ^ f.Finding.message))
    in
    let scand = summarize ~opts ~sub:no_subst candidate sym in
    compare_summaries ~opts ~sym sref scand
  with
  | Refute f -> Refuted f
  | Ref_failed r | Give_up r -> Unproven r
  | Failure msg -> Unproven ("evaluation error: " ^ msg)
  | Stack_overflow -> Unproven "evaluation recursion limit"

(* Entry point for verifying candidate peephole rewrites (the planned
   superoptimizer calls this with a single-kernel module pair). *)
let check_rewrite = check_kernel

let kernels_of m =
  List.filter_map
    (fun f ->
      if f.Ir.kind = Ir.Kernel && not f.Ir.is_decl then Some f.Ir.fname else None)
    m.Ir.funcs

let check_module_pair ?(opts = default_options) ?(subst = no_subst) ~reference
    ~candidate () : (string * verdict) list =
  kernels_of reference
  |> List.filter (fun sym ->
         match Ir.find_func_opt candidate sym with
         | Some f -> not f.Ir.is_decl
         | None -> false)
  |> List.map (fun sym ->
         (sym, check_kernel ~opts ~subst ~reference ~candidate sym))

let verdict_to_string = function
  | Proven -> "proven"
  | Unproven r -> "unproven: " ^ r
  | Refuted f -> "refuted: " ^ f.Finding.message

(* Finding view of a verdict, for the CLI/SARIF surfaces. *)
let finding_of_verdict ~sym = function
  | Proven -> None
  | Refuted f -> Some f
  | Unproven r ->
      Some
        (Finding.mk ~kind:Finding.Transval_unproven ~severity:Finding.Info
           ~func:sym ~block:"<summary>" ("equivalence unproven: " ^ r))

(* ------------------------------------------------------------------ *)
(* Test-facing internals: raw (unnormalized) construction, the
   normalizer as a standalone function, and concrete evaluation, so
   qcheck can state `norm (norm t) = norm t` and `eval t = eval (norm
   t)` without going through a whole kernel. Unlike [check_kernel],
   these touch the shared term universe without taking [engine_lock]:
   single-threaded test use only. *)
module Internal = struct
  let raw node = intern node
  let norm t = subst_free ~f:(fun _ _ -> None) t

  type nonrec cenv = cenv = {
    e_param : int -> Types.ty -> Konst.t;
    e_query : string -> Konst.t;
    e_glob : string -> Konst.t;
  }

  let eval = ceval
  let sample_env = sample_env
  let is_pure = is_pure
  let counterexample_mem = counterexample_mem
  let summarize ?(opts = default_options) ?(sub = no_subst) m sym =
    summarize ~opts ~sub m sym
  let chain_nodes = chain_nodes
end
