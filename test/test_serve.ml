(* Multi-tenant JIT service suite (@serve, part of runtest):
   qcheck eviction-invariant properties for the shared
   content-addressed store (byte caps, LRU victim selection against a
   reference model, per-tenant quotas, hit/miss/evict conservation),
   deterministic Zipf workload-generator properties (same seed ->
   identical schedule, skew moves hot-key mass monotonically, schedules
   replay from their JSON dump), and tenant-isolation tests proving an
   armed specialize-corrupt fault in tenant A quarantines A only while
   tenant B's service level and outputs are untouched. *)

open Proteus_backend
open Proteus_core
open Proteus_fuzz

let check = Alcotest.check

(* Deterministic qcheck seeding, same contract as the main suite's
   Qseed (that module belongs to the other test stanza): fixed seed by
   default, PROTEUS_QCHECK_SEED to rotate or replay. *)
let qseed =
  match Sys.getenv_opt "PROTEUS_QCHECK_SEED" with
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some n -> n
      | None ->
          Printf.eprintf "PROTEUS_QCHECK_SEED=%S is not an integer\n%!" s;
          exit 2)
  | None -> 0x5eed

let qtest cell =
  let name, speed, run =
    QCheck_alcotest.to_alcotest ~rand:(Random.State.make [| qseed |]) cell
  in
  ( name,
    speed,
    fun () ->
      try run ()
      with e ->
        Printf.eprintf
          "[qcheck] %s failed under seed %d (replay with PROTEUS_QCHECK_SEED=%d)\n%!"
          name qseed qseed;
        raise e )

let tmpdir () =
  let d = Filename.temp_file "proteus-serve" "" in
  Sys.remove d;
  Unix.mkdir d 0o755;
  d

let rm_rf d =
  if Sys.file_exists d then begin
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
    Unix.rmdir d
  end

(* ---- cache-eviction properties ----------------------------------- *)

(* Objects of a few distinct sizes so eviction decisions depend on
   byte accounting, not just entry counts. *)
let obj_of ~(size_sel : int) ~(stamp : int) : Mach.obj =
  {
    Mach.okind = Mach.VGcn;
    kernels = [];
    oglobals = [];
    sections =
      [ ("s", Printf.sprintf "%06d-%s" stamp (String.make (40 + (64 * size_sel)) 'x')) ];
  }

let entry_bytes o = String.length (Mach.encode_obj o)

let spec_key i =
  Speckey.compute ~mid:"m" ~sym:(Printf.sprintf "k%d" i) ~spec_values:[]
    ~launch_bounds:None

let owner_name i = Printf.sprintf "T%d" i

(* One service-facing operation against the store: an insert (a tenant
   publishing a freshly compiled artifact) or a lookup (a launch
   probing for one). *)
type op = Insert of int * int * int (* owner, key, size selector *) | Lookup of int * int

let op_gen =
  QCheck.Gen.(
    map
      (fun (ins, owner, key, sel) ->
        if ins then Insert (owner, key, sel) else Lookup (owner, key))
      (quad bool (int_bound 2) (int_bound 9) (int_bound 3)))

let op_print = function
  | Insert (o, k, s) -> Printf.sprintf "insert(T%d,k%d,#%d)" o k s
  | Lookup (o, k) -> Printf.sprintf "lookup(T%d,k%d)" o k

let ops_arb =
  QCheck.make
    ~print:(fun l -> String.concat "; " (List.map op_print l))
    QCheck.Gen.(list_size (int_range 1 120) op_gen)

(* Reference model of the memory tier: an assoc list of
   key -> (owner, bytes, last_used), with the store's documented
   eviction order (tenant quota first, then the global cap; LRU victim
   within each; the newest entry — globally or per owner — is never
   evicted). Model and store must agree on the exact resident set,
   both byte ledgers and all counters after every operation. *)
type model = {
  mutable entries : (string * (string * int * int)) list;
  mutable mtick : int;
  mutable ev_mem : int;
  mutable ev_quota : int;
  mutable hits : int;
  mutable missed : int;
}

let model_total m = List.fold_left (fun a (_, (_, b, _)) -> a + b) 0 m.entries

let model_owner_bytes m o =
  List.fold_left (fun a (_, (ow, b, _)) -> if ow = o then a + b else a) 0 m.entries

let model_owner_count m o =
  List.fold_left (fun a (_, (ow, _, _)) -> if ow = o then a + 1 else a) 0 m.entries

let model_evict_lru m ~(only : string option) =
  let victim =
    List.fold_left
      (fun acc (k, (ow, _, lu)) ->
        if (match only with Some o -> ow <> o | None -> false) then acc
        else
          match acc with
          | Some (_, lu') when lu' <= lu -> acc
          | _ -> Some (k, lu))
      None m.entries
  in
  match victim with
  | Some (k, _) -> m.entries <- List.remove_assoc k m.entries
  | None -> assert false

let model_apply m ~quota ~cap op =
  match op with
  | Insert (oi, ki, sel) ->
      let o = owner_name oi and k = Speckey.to_string (spec_key ki) in
      let bytes = entry_bytes (obj_of ~size_sel:sel ~stamp:ki) in
      m.mtick <- m.mtick + 1;
      m.entries <- (k, (o, bytes, m.mtick)) :: List.remove_assoc k m.entries;
      if quota > 0 then
        while model_owner_bytes m o > quota && model_owner_count m o > 1 do
          m.ev_quota <- m.ev_quota + 1;
          model_evict_lru m ~only:(Some o)
        done;
      if cap > 0 then
        while model_total m > cap && List.length m.entries > 1 do
          m.ev_mem <- m.ev_mem + 1;
          model_evict_lru m ~only:None
        done
  | Lookup (_, ki) -> (
      let k = Speckey.to_string (spec_key ki) in
      match List.assoc_opt k m.entries with
      | Some (o, b, _) ->
          m.mtick <- m.mtick + 1;
          m.hits <- m.hits + 1;
          m.entries <- (k, (o, b, m.mtick)) :: List.remove_assoc k m.entries
      | None -> m.missed <- m.missed + 1)

let store_apply c op =
  match op with
  | Insert (oi, ki, sel) ->
      ignore
        (Cachestore.insert ~owner:(owner_name oi) c (spec_key ki)
           (obj_of ~size_sel:sel ~stamp:ki))
  | Lookup (oi, ki) ->
      ignore (Cachestore.lookup ~owner:(owner_name oi) c (spec_key ki))

let resident_keys c =
  Hashtbl.fold (fun k _ acc -> k :: acc) c.Cachestore.mem [] |> List.sort compare

let run_stream ~quota ~cap ops =
  let c = Cachestore.create ~mem_limit:cap ~tenant_quota:quota () in
  let m =
    { entries = []; mtick = 0; ev_mem = 0; ev_quota = 0; hits = 0; missed = 0 }
  in
  List.iter
    (fun op ->
      store_apply c op;
      model_apply m ~quota ~cap op)
    ops;
  (c, m)

let probe = entry_bytes (obj_of ~size_sel:1 ~stamp:0)

(* P1: the memory tier's byte total never exceeds the cap (except the
   documented single-entry escape: one oversized artifact stays
   resident rather than making the key uncacheable). *)
let prop_mem_cap =
  QCheck.Test.make ~name:"mem tier bytes never exceed the cap" ~count:200 ops_arb
    (fun ops ->
      let cap = probe * 3 in
      let c = Cachestore.create ~mem_limit:cap () in
      List.for_all
        (fun op ->
          store_apply c op;
          Cachestore.mem_size c <= cap || Hashtbl.length c.Cachestore.mem <= 1)
        ops)

(* P2: the disk tier's byte total never exceeds its cap — with no
   single-entry escape: the newest file is itself evictable, so the
   bound is unconditional. *)
let prop_disk_cap =
  QCheck.Test.make ~name:"disk tier bytes never exceed the cap" ~count:20
    ops_arb (fun ops ->
      let dir = tmpdir () in
      let cap = probe * 2 in
      let c = Cachestore.create ~persistent_dir:dir ~disk_limit:cap () in
      let ok =
        List.for_all
          (fun op ->
            store_apply c op;
            Cachestore.persistent_size c <= cap)
          ops
      in
      rm_rf dir;
      ok)

(* P3: eviction picks the least-recently-hit entry — the store's
   resident set, both byte ledgers and the eviction counters match an
   independently coded LRU model after every operation. *)
let prop_lru_model =
  QCheck.Test.make ~name:"LRU victim is least-recently-hit (model equivalence)"
    ~count:200 ops_arb (fun ops ->
      let cap = probe * 4 in
      let c, m = run_stream ~quota:0 ~cap ops in
      resident_keys c = List.sort compare (List.map fst m.entries)
      && Cachestore.mem_size c = model_total m
      && c.Cachestore.evictions_mem = m.ev_mem)

(* P4: a tenant's resident bytes never exceed its quota (single-entry
   escape per owner), and the store agrees with the model when quota
   and global cap interact. *)
let prop_tenant_quota =
  QCheck.Test.make ~name:"per-tenant quota never exceeded" ~count:200 ops_arb
    (fun ops ->
      let quota = probe * 2 and cap = probe * 5 in
      let c, m = run_stream ~quota ~cap ops in
      let owners = [ "T0"; "T1"; "T2" ] in
      List.for_all
        (fun o ->
          let owned =
            Hashtbl.fold
              (fun _ (e : Cachestore.entry) n ->
                if e.Cachestore.owner = Some o then n + 1 else n)
              c.Cachestore.mem 0
          in
          (Cachestore.tenant_size c o <= quota || owned <= 1)
          && Cachestore.tenant_size c o = model_owner_bytes m o)
        owners
      && resident_keys c = List.sort compare (List.map fst m.entries)
      && c.Cachestore.evictions_quota = m.ev_quota)

(* P5: accounting is conserved across a random launch stream — with
   every insert under a fresh key (no overwrites), each inserted entry
   is either still resident or counted by exactly one eviction
   counter, and every lookup is exactly one hit or one miss. *)
let prop_conservation =
  QCheck.Test.make ~name:"hit+miss+evict accounting conserved" ~count:200
    ops_arb (fun ops ->
      (* re-key the inserts to be unique in stream order; lookups keep
         their generated keys and may or may not find them resident *)
      let next = ref 0 in
      let ops =
        List.map
          (function
            | Insert (o, _, sel) ->
                incr next;
                Insert (o, 1000 + !next, sel)
            | Lookup (o, k) -> Lookup (o, 1000 + k))
          ops
      in
      let quota = probe * 2 and cap = probe * 4 in
      let c, m = run_stream ~quota ~cap ops in
      let inserts =
        List.length (List.filter (function Insert _ -> true | _ -> false) ops)
      in
      let lookups =
        List.length (List.filter (function Lookup _ -> true | _ -> false) ops)
      in
      Hashtbl.length c.Cachestore.mem
      = inserts - c.Cachestore.evictions_mem - c.Cachestore.evictions_quota
      && c.Cachestore.mem_hits + c.Cachestore.misses = lookups
      && c.Cachestore.mem_hits = m.hits
      && c.Cachestore.misses = m.missed)

(* ---- workload generator ------------------------------------------ *)

let wl_seed_gen = QCheck.map (fun i -> 100 + i) QCheck.(int_bound 5_000)

let prop_workload_deterministic =
  QCheck.Test.make ~name:"same seed, identical schedule" ~count:100 wl_seed_gen
    (fun seed ->
      let g () =
        Workload.generate ~seed ~tenants:4 ~kernels:16 ~launches:500 ~skew:1.1
      in
      (g ()).Workload.schedule = (g ()).Workload.schedule)

let prop_workload_skew_monotone =
  QCheck.Test.make ~name:"skew shifts hot-key mass monotonically" ~count:50
    wl_seed_gen (fun seed ->
      let mass skew =
        Workload.hot_mass
          (Workload.generate ~seed ~tenants:4 ~kernels:16 ~launches:800 ~skew)
          ~top:1
      in
      let ms = List.map mass [ 0.0; 0.5; 1.0; 1.5; 2.0 ] in
      List.for_all2 (fun a b -> a <= b) (List.filteri (fun i _ -> i < 4) ms)
        (List.tl ms))

let prop_workload_json_roundtrip =
  QCheck.Test.make ~name:"schedule replays from its JSON dump" ~count:100
    wl_seed_gen (fun seed ->
      let w =
        Workload.generate ~seed ~tenants:3 ~kernels:8 ~launches:200 ~skew:0.9
      in
      match Workload.of_json (Workload.to_json w) with
      | Ok w' -> w = w'
      | Error _ -> false)

let test_workload_rejects_malformed () =
  let w = Workload.generate ~seed:1 ~tenants:2 ~kernels:2 ~launches:2 ~skew:1.0 in
  let good = Workload.to_json w in
  let bad s =
    match Workload.of_json s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "trailing garbage rejected" true (bad (good ^ "x"));
  Alcotest.(check bool) "unknown field rejected" true
    (bad "{\"seed\": 1, \"bogus\": 2}");
  Alcotest.(check bool) "missing fields rejected" true (bad "{\"seed\": 1}");
  Alcotest.(check bool) "length mismatch rejected" true
    (bad
       "{\"seed\": 1, \"tenants\": 2, \"kernels\": 2, \"launches\": 3, \
        \"skew\": 1.0, \"schedule\": [[0, 0]]}");
  Alcotest.(check bool) "tenant out of range rejected" true
    (bad
       "{\"seed\": 1, \"tenants\": 2, \"kernels\": 2, \"launches\": 1, \
        \"skew\": 1.0, \"schedule\": [[5, 0]]}");
  Alcotest.(check bool) "its own dump accepted" true
    (match Workload.of_json good with Ok w' -> w' = w | Error _ -> false)

let test_workload_tenant_split () =
  let w = Workload.generate ~seed:9 ~tenants:3 ~kernels:4 ~launches:300 ~skew:1.0 in
  let per =
    List.init 3 (fun tn -> Array.length (Workload.tenant_schedule w ~tenant:tn))
  in
  check Alcotest.int "tenant streams partition the schedule" 300
    (List.fold_left ( + ) 0 per);
  (* a tenant's stream preserves schedule order *)
  let s0 = Workload.tenant_schedule w ~tenant:0 in
  Array.iter (fun (tn, _) -> check Alcotest.int "only tenant 0" 0 tn) s0

(* ---- serve: shared store, isolation ------------------------------ *)

let sum_stats sv f =
  let n = Serve.tenant_count sv in
  let acc = ref 0 in
  for tn = 0 to n - 1 do
    acc := !acc + f (Serve.stats sv ~tenant:tn)
  done;
  !acc

(* An armed specialize-corrupt fault in tenant A (under the verify
   gate) quarantines A only: B's compiles, hit rate and outputs are
   exactly those of a clean run, and both tenants' outputs match the
   clean serial replay (the corrupt artifact is never served). *)
let test_tenant_isolation () =
  let config = { Config.default with Config.verify_jit = true } in
  let sv =
    Serve.create ~config ~tenants:2 ~kernels:2
      ~tenant_faults:[ ("T0", [ (Fault.Specialize_corrupt, Fault.Always) ]) ]
      ()
  in
  let schedule =
    Array.append
      (Array.make 10 (0, 0)) (* A hammers kernel 0: every compile rejected *)
      (Array.make 10 (1, 0)) (* B then serves the same kernel cleanly *)
  in
  Serve.run sv schedule;
  Serve.finish sv;
  let sa = Serve.stats sv ~tenant:0 and sb = Serve.stats sv ~tenant:1 in
  Alcotest.(check bool) "A's compiles were rejected" true
    (sa.Stats.verify_rejections > 0);
  Alcotest.(check bool) "A fell back to AOT" true (sa.Stats.fallbacks > 0);
  Alcotest.(check bool) "A is quarantined" true
    (Jit.quarantined_kernels (Serve.jit sv ~tenant:0) <> []);
  Alcotest.(check bool) "A served quarantined launches" true
    (sa.Stats.quarantined_launches > 0);
  (* isolation: B never saw any of it *)
  check Alcotest.int "B not quarantined" 0
    (List.length (Jit.quarantined_kernels (Serve.jit sv ~tenant:1)));
  check Alcotest.int "B has no fallbacks" 0 sb.Stats.fallbacks;
  check Alcotest.int "B has no quarantined launches" 0
    sb.Stats.quarantined_launches;
  check Alcotest.int "B compiled once" 1 sb.Stats.compiles;
  Alcotest.(check bool) "B's hit rate is intact" true
    (Stats.hit_rate sb >= 0.89);
  (* and nobody's outputs were poisoned *)
  for tn = 0 to 1 do
    check Alcotest.string
      (Printf.sprintf "tenant %d output matches clean replay" tn)
      (Serve.replay_output ~config sv ~tenant:tn schedule)
      (Serve.output sv ~tenant:tn)
  done

(* The same fault armed for every tenant must quarantine everyone —
   guards against isolation accidentally disabling injection. *)
let test_unscoped_fault_hits_all () =
  let config = { Config.default with Config.verify_jit = true } in
  let plan = [ (Fault.Specialize_corrupt, Fault.Always) ] in
  let sv =
    Serve.create ~config ~tenants:2 ~kernels:1
      ~tenant_faults:[ ("T0", plan); ("T1", plan) ]
      ()
  in
  let schedule =
    Array.init 20 (fun i -> (i mod 2, 0))
  in
  Serve.run sv schedule;
  Serve.finish sv;
  for tn = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "tenant %d quarantined" tn)
      true
      (Jit.quarantined_kernels (Serve.jit sv ~tenant:tn) <> [])
  done

(* Shared-store economics: N tenants over one store compile each
   distinct kernel exactly once between them, and a serial run and a
   sharded run produce bit-identical tenant outputs. *)
let test_serve_shared_compile_once () =
  let w = Workload.generate ~seed:5 ~tenants:4 ~kernels:6 ~launches:600 ~skew:1.0 in
  let distinct =
    List.length
      (List.sort_uniq compare (List.map snd (Array.to_list w.Workload.schedule)))
  in
  let sv = Serve.create ~tenants:4 ~kernels:6 () in
  Serve.run sv w.Workload.schedule;
  Serve.finish sv;
  check Alcotest.int "one compile per distinct kernel" distinct
    (sum_stats sv (fun s -> s.Stats.compiles));
  check Alcotest.int "every launch served" 600
    (sum_stats sv (fun s -> s.Stats.jit_launches));
  let sv2 = Serve.create ~tenants:4 ~kernels:6 () in
  Serve.run_sharded sv2 ~domains:2 w.Workload.schedule;
  Serve.finish sv2;
  for tn = 0 to 3 do
    check Alcotest.string
      (Printf.sprintf "tenant %d serial = sharded" tn)
      (Serve.output sv ~tenant:tn)
      (Serve.output sv2 ~tenant:tn)
  done

(* Per-tenant quotas inside the serve loop: a tight quota caps each
   tenant's resident bytes without evicting neighbours' entries. *)
let test_serve_tenant_quota () =
  let config = { Config.default with Config.tenant_quota = probe * 2 } in
  let w = Workload.generate ~seed:11 ~tenants:2 ~kernels:12 ~launches:400 ~skew:0.2 in
  let sv = Serve.create ~config ~tenants:2 ~kernels:12 () in
  Serve.run sv w.Workload.schedule;
  Serve.finish sv;
  let store = Serve.store sv in
  Alcotest.(check bool) "quota evictions happened" true
    (store.Cachestore.evictions_quota > 0);
  for tn = 0 to 1 do
    let name = Serve.tenant_name sv ~tenant:tn in
    let owned =
      Hashtbl.fold
        (fun _ (e : Cachestore.entry) n ->
          if e.Cachestore.owner = Some name then n + 1 else n)
        store.Cachestore.mem 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "tenant %d within quota" tn)
      true
      (Cachestore.tenant_size store name <= probe * 2 || owned <= 1)
  done;
  (* outputs unaffected by quota pressure *)
  for tn = 0 to 1 do
    check Alcotest.string
      (Printf.sprintf "tenant %d output correct under quota" tn)
      (Serve.replay_output sv ~tenant:tn w.Workload.schedule)
      (Serve.output sv ~tenant:tn)
  done

let () =
  Alcotest.run "serve"
    [
      ( "eviction-properties",
        [
          qtest prop_mem_cap;
          qtest prop_disk_cap;
          qtest prop_lru_model;
          qtest prop_tenant_quota;
          qtest prop_conservation;
        ] );
      ( "workload",
        [
          qtest prop_workload_deterministic;
          qtest prop_workload_skew_monotone;
          qtest prop_workload_json_roundtrip;
          Alcotest.test_case "malformed dumps rejected" `Quick
            test_workload_rejects_malformed;
          Alcotest.test_case "tenant streams partition the schedule" `Quick
            test_workload_tenant_split;
        ] );
      ( "isolation",
        [
          Alcotest.test_case "corrupt tenant quarantined alone" `Quick
            test_tenant_isolation;
          Alcotest.test_case "unscoped fault hits every tenant" `Quick
            test_unscoped_fault_hits_all;
        ] );
      ( "service",
        [
          Alcotest.test_case "one compile per kernel across tenants" `Quick
            test_serve_shared_compile_once;
          Alcotest.test_case "tenant quota caps residency" `Quick
            test_serve_tenant_quota;
        ] );
    ]
