examples/quickstart.ml: Device Driver Printf Proteus_core Proteus_driver Proteus_gpu Stats
