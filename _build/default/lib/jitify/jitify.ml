(* A Jitify-like baseline (NVIDIA-only): kernels arrive as stringified
   C++ source at runtime and the full compilation toolchain runs on
   every new instantiation - lexer, parser, semantic analysis, lowering,
   O3, PTX emission and ptxas. "Runtime constants" are supported through
   template-parameter-style specialization of designated arguments; the
   launch configuration is NOT baked in (no launch-bounds optimization),
   matching NVIDIA Jitify's behaviour in the paper.

   Differences from Proteus that the paper measures:
   - much higher per-compile overhead (string -> AST -> IR instead of
     parsing compact IR bitcode), charged via the cost model;
   - a mandatory toolchain startup cost per program;
   - an in-memory cache only (the experimental user-managed persistent
     cache is not modelled);
   - no dynamic launch bounds. *)

open Proteus_support
open Proteus_ir
open Proteus_backend
open Proteus_gpu
open Proteus_runtime

exception Unsupported of string

type program = {
  source : string;
  name : string;
  mutable toolchain_ready : bool;
}

type t = {
  rt : Gpurt.ctx;
  cache : (string, Mach.mfunc) Hashtbl.t;
  mutable compiles : int;
  mutable compile_overhead_s : float;
  mutable real_compile_s : float;
}

let create (rt : Gpurt.ctx) : t =
  if rt.Gpurt.device.Device.vendor <> Device.Nvidia then
    raise (Unsupported "Jitify targets NVIDIA only");
  { rt; cache = Hashtbl.create 16; compiles = 0; compile_overhead_s = 0.0;
    real_compile_s = 0.0 }

let program ~(name : string) (source : string) : program =
  { source; name; toolchain_ready = false }

let charge t s = Clock.advance t.rt.Gpurt.clock s

let key_of (p : program) (sym : string) (consts : (int * Konst.t) list) =
  let h = Util.Fnv.string p.source in
  let h = Util.Fnv.add_string h sym in
  let h =
    List.fold_left
      (fun h (i, k) -> Util.Fnv.add_string (Util.Fnv.add_int h i) (Konst.to_string k))
      h consts
  in
  Util.Fnv.to_hex h

(* Compile one kernel instantiation from source. *)
let instantiate (t : t) (p : program) ~(sym : string)
    ~(consts : (int * Konst.t) list) : Mach.mfunc =
  let key = key_of p sym consts in
  match Hashtbl.find_opt t.cache key with
  | Some k -> k
  | None ->
      let cost = t.rt.Gpurt.cost in
      let before = Clock.read t.rt.Gpurt.clock in
      let t0 = Unix.gettimeofday () in
      if not p.toolchain_ready then begin
        charge t cost.Costmodel.toolchain_startup_s;
        p.toolchain_ready <- true
      end;
      (* full frontend over the stringified source *)
      charge t
        (float_of_int (String.length p.source) *. cost.Costmodel.frontend_per_byte_s);
      let m =
        try Proteus_frontend.Compile.compile_device_only ~name:p.name p.source
        with e -> raise (Unsupported (Printexc.to_string e))
      in
      let f =
        match Ir.find_func_opt m sym with
        | Some f when f.Ir.kind = Ir.Kernel -> f
        | _ -> raise (Unsupported ("no kernel " ^ sym ^ " in program " ^ p.name))
      in
      (* device globals cannot be linked from string kernels: the RTC
         module has no access to the host executable's symbols. This is
         the mechanistic stand-in for Jitify failing on LULESH. *)
      if m.Ir.globals <> [] then
        raise (Unsupported ("program " ^ p.name ^ " references device globals"));
      (* template-parameter specialization: fold designated arguments *)
      List.iteri
        (fun i (_, reg) ->
          match List.assoc_opt (i + 1) consts with
          | Some k -> Ir.replace_uses f reg (Ir.Imm k)
          | None -> ())
        f.Ir.params;
      let pstats = Proteus_opt.Pipeline.optimize_o3 m in
      charge t (float_of_int pstats.Proteus_opt.Pass.work *. cost.Costmodel.opt_per_work_s);
      let ptx = Ptx.emit m in
      charge t
        (float_of_int (String.length ptx)
        *. (cost.Costmodel.ptx_emit_per_byte_s +. cost.Costmodel.ptxas_per_byte_s));
      let obj = Ptxas.compile ~globals:[] ptx in
      let k = Mach.find_kernel obj sym in
      charge t
        (float_of_int (String.length (Mach.encode_obj obj))
        *. cost.Costmodel.module_load_per_byte_s);
      Hashtbl.replace t.cache key k;
      t.compiles <- t.compiles + 1;
      t.compile_overhead_s <-
        t.compile_overhead_s +. (Clock.read t.rt.Gpurt.clock -. before);
      t.real_compile_s <- t.real_compile_s +. (Unix.gettimeofday () -. t0);
      k

(* Launch an instantiated kernel. *)
let launch (t : t) (p : program) ~(sym : string) ~(consts : (int * Konst.t) list)
    ~(grid : int) ~(block : int) ~(args : Konst.t array) : unit =
  let k = instantiate t p ~sym ~consts in
  Gpurt.launch_mfunc t.rt k ~grid ~block ~args

(* --------------------------------------------------------------- *)
(* Harness integration: run an annotated program end-to-end with
   annotated kernel launches redirected through Jitify, reusing the
   Proteus plugin's call-site rewriting so the same application sources
   drive both tools (the paper modified each HeCBench app by hand). *)

let host_hook (t : t) (p : program) (h : Hostexec.host_ctx) (name : string)
    (args : Konst.t list) : Konst.t option option =
  if name = Proteus_core.Plugin.entry_point then begin
    match args with
    | _mid :: stub :: grid :: block :: _shmem :: rest when rest <> [] ->
        let rec split_last = function
          | [ x ] -> ([], x)
          | x :: tl ->
              let init, last = split_last tl in
              (x :: init, last)
          | [] -> assert false
        in
        let kargs, mask = split_last rest in
        let sym =
          match Gpurt.sym_of_stub t.rt (Konst.as_int stub) with
          | Some s -> s
          | None -> Util.failf "Jitify harness: unregistered stub"
        in
        let consts =
          List.filter_map
            (fun i ->
              if i <= List.length kargs then Some (i, List.nth kargs (i - 1)) else None)
            (Proteus_core.Annotate.args_of_mask (Konst.as_int mask))
        in
        launch t p ~sym ~consts
          ~grid:(Int64.to_int (Konst.as_int grid))
          ~block:(Int64.to_int (Konst.as_int block))
          ~args:(Array.of_list kargs);
        Some None
    | _ -> Util.failf "Jitify harness: malformed launch"
  end
  else if name = Proteus_core.Plugin.register_var_fn then Some None
  else (ignore h; None)
