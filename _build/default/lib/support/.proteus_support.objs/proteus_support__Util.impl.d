lib/support/util.ml: Array Buffer Char Filename Format Int Int32 Int64 Lazy List Map Printf Set String Sys Unix
