(* Proteus JIT configuration knobs, matching the paper's experiment
   modes: None (JIT with O3 but no specialization, Fig. 6), LB, RCF and
   LB+RCF (Sec. 4.5), with in-memory and persistent caching toggles. *)

type t = {
  enable_rcf : bool; (* runtime constant folding of kernel arguments *)
  enable_lb : bool; (* dynamic launch bounds *)
  use_mem_cache : bool;
  persistent_dir : string option; (* None disables the disk cache *)
}

let default =
  { enable_rcf = true; enable_lb = true; use_mem_cache = true; persistent_dir = None }

(* Paper mode names *)
let mode_none = { default with enable_rcf = false; enable_lb = false }
let mode_lb = { default with enable_rcf = false; enable_lb = true }
let mode_rcf = { default with enable_rcf = true; enable_lb = false }
let mode_lb_rcf = default

let mode_name c =
  match (c.enable_rcf, c.enable_lb) with
  | false, false -> "None"
  | false, true -> "LB"
  | true, false -> "RCF"
  | true, true -> "LB+RCF"
