lib/opt/gvn.ml: Cfg Dom Hashtbl Ir Konst List Ops Pass Printf Proteus_ir String Types
