(* Runtime tests: module loading, registration, memcpy, the simulated
   clock, printf formatting and program exit handling. *)

open Proteus_ir
open Proteus_frontend
open Proteus_backend
open Proteus_gpu
open Proteus_runtime

let check = Alcotest.check

let rt () = Gpurt.create (Device.by_vendor Device.Nvidia)

let compile_unit ?(vendor = Device.Nvidia) src =
  let fe = match vendor with Device.Amd -> Lower.Hip | Device.Nvidia -> Lower.Cuda in
  let u = Compile.compile ~vendor:fe src in
  ignore (Proteus_opt.Pipeline.optimize_o3 u.Compile.device);
  let obj, _ =
    match vendor with
    | Device.Amd -> Hip.aot_compile_device u.Compile.device
    | Device.Nvidia -> Cuda.aot_compile_device u.Compile.device
  in
  (u, obj)

(* ---- module loading & symbols ---- *)

let test_load_inits_globals () =
  let _, obj =
    compile_unit
      {|__device__ double coefs[4];
        __device__ int mode;
        __global__ void touch(double* o) { o[0] = coefs[0] + (double)mode; }
        int main() { return 0; }|}
  in
  let ctx = rt () in
  let _lm = Gpurt.load_module ctx obj in
  (match Gpurt.get_symbol_address ctx "coefs" with
  | Some a -> Alcotest.(check bool) "coefs allocated" true (Int64.to_int a > 0)
  | None -> Alcotest.fail "coefs not found");
  (match Gpurt.get_symbol_address ctx "mode" with
  | Some _ -> ()
  | None -> Alcotest.fail "mode not found");
  check Alcotest.(option int) "unknown symbol" None
    (Option.map Int64.to_int (Gpurt.get_symbol_address ctx "nothere"))

let test_load_string_init () =
  let ctx = rt () in
  let obj =
    { Mach.okind = Mach.VSass; kernels = [];
      oglobals =
        [ { Ir.gname = "blob"; gty = Types.TArr (Types.TInt 8, 5);
            gspace = Types.AS_global; ginit = Ir.InitString "abcd";
            gconst = true; gextern = false } ];
      sections = [] }
  in
  let _ = Gpurt.load_module ctx obj in
  match Gpurt.get_symbol_address ctx "blob" with
  | Some a ->
      check Alcotest.string "content" "abcd" (Gpurt.read_device_bytes ctx a 4)
  | None -> Alcotest.fail "blob missing"

let test_registration () =
  let ctx = rt () in
  Gpurt.register_function ctx ~stub_addr:0x1000L ~sym:"daxpy";
  check Alcotest.(option string) "resolves" (Some "daxpy") (Gpurt.sym_of_stub ctx 0x1000L);
  check Alcotest.(option string) "unknown stub" None (Gpurt.sym_of_stub ctx 0x2000L)

let test_memcpy_roundtrip () =
  let ctx = rt () in
  let host = Gmem.create () in
  let h = Gmem.alloc host 64 and d = Gpurt.dmalloc ctx 64 in
  for i = 0 to 7 do
    Gmem.write_f64 host (Int64.add h (Int64.of_int (i * 8))) (float_of_int (i * i))
  done;
  Gpurt.memcpy_h2d ctx ~host ~src:h ~dst:d ~bytes:64;
  let h2 = Gmem.alloc host 64 in
  Gpurt.memcpy_d2h ctx ~host ~src:d ~dst:h2 ~bytes:64;
  for i = 0 to 7 do
    check (Alcotest.float 0.0) "roundtrip"
      (float_of_int (i * i))
      (Gmem.read_f64 host (Int64.add h2 (Int64.of_int (i * 8))))
  done

let test_clock_advances () =
  let ctx = rt () in
  let t0 = Clock.read ctx.Gpurt.clock in
  let _ = Gpurt.dmalloc ctx 1024 in
  let host = Gmem.create () in
  let h = Gmem.alloc host 1024 in
  Gpurt.memcpy_h2d ctx ~host ~src:h ~dst:(Gpurt.dmalloc ctx 1024) ~bytes:1024;
  Alcotest.(check bool) "clock moved" true (Clock.read ctx.Gpurt.clock > t0)

(* ---- host execution ---- *)

let run_src ?vendor src =
  let u, obj = compile_unit ?vendor src in
  let ctx =
    match vendor with
    | Some Device.Amd -> Gpurt.create (Device.by_vendor Device.Amd)
    | _ -> rt ()
  in
  let _ = Gpurt.load_module ctx obj in
  Hostexec.run ctx u.Compile.host

let test_printf_formats () =
  let r =
    run_src
      {|int main() {
          printf("int=%d long=%ld neg=%d\n", 42, 1234567890123L, -7);
          printf("f=%f g=%g e=%e\n", 1.5, 0.125, 100.0);
          printf("s=%s c=%c pct=%%\n", "str", 88);
          return 0;
        }|}
  in
  check Alcotest.string "formats"
    "int=42 long=1234567890123 neg=-7\nf=1.500000 g=0.125 e=1.000000e+02\ns=str c=X pct=%\n"
    r.Hostexec.output

let test_exit_codes () =
  check Alcotest.int "return code" 5 (run_src {|int main() { return 5; }|}).Hostexec.exit_code;
  check Alcotest.int "exit()" 9
    (run_src {|int main() { exit(9); return 0; }|}).Hostexec.exit_code

let test_host_instr_counting () =
  let r = run_src {|int main() { int s = 0; for (int i = 0; i < 100; i++) s += i; return 0; }|} in
  Alcotest.(check bool) "host instructions counted" true (r.Hostexec.host_instrs > 300)

let test_unknown_extern_fails () =
  (* calling a declared-but-unhandled extern traps cleanly *)
  let u = Compile.compile ~vendor:Lower.Cuda {|int main() { return 0; }|} in
  (* inject a call to a bogus extern *)
  let main = Ir.find_func u.Compile.host "main" in
  u.Compile.host.Ir.funcs <-
    u.Compile.host.Ir.funcs
    @ [ Ir.create_func ~kind:Ir.Host ~is_decl:true "mystery" [] Types.TVoid ];
  (Ir.entry main).Ir.insts <-
    (Ir.entry main).Ir.insts @ [ Ir.ICall (None, "mystery", []) ];
  let ctx = rt () in
  Alcotest.(check bool) "raises" true
    (try ignore (Hostexec.run ctx u.Compile.host); false with Failure _ -> true)

let test_device_global_shared_between_kernels () =
  (* one kernel writes a device global, another reads it back: they must
     observe the same storage (the dynamic-linking invariant of 3.3) *)
  let r =
    run_src
      {|__device__ double stash;
        __global__ void put(double v) { stash = v; }
        __global__ void get(double* out) { out[0] = stash; }
        int main() {
          double* d = (double*)cudaMalloc(8);
          put<<<1, 1>>>(6.75);
          get<<<1, 1>>>(d);
          double h = 0.0;
          cudaMemcpyDtoH(&h, d, 8);
          printf("stash=%g\n", h);
          return 0;
        }|}
  in
  check Alcotest.string "global state shared" "stash=6.75\n" r.Hostexec.output

let test_cuda_fatbin_drops_sections () =
  let _, obj = compile_unit {|__global__ void k(int* p) { p[0] = 1; } int main(){return 0;}|} in
  let obj = { obj with Mach.sections = [ (".jit.k", "data") ] } in
  let cuda = Cuda.embed_fatbin obj in
  check Alcotest.int "CUDA strips custom sections" 0 (List.length cuda.Mach.sections);
  let hip = Hip.embed_fatbin obj in
  check Alcotest.int "HIP keeps them" 1 (List.length hip.Mach.sections)

let test_vendor_flavours_run_same_program () =
  let src =
    {|__global__ void inc(int* v, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) v[i] = v[i] + 1;
      }
      int main() {
        int n = 64;
        int* h = (int*)malloc(n * 4);
        for (int i = 0; i < n; i++) h[i] = i;
        int* d = (int*)cudaMalloc(n * 4);
        cudaMemcpyHtoD(d, h, n * 4);
        inc<<<1, 64>>>(d, n);
        cudaMemcpyDtoH(h, d, n * 4);
        int s = 0;
        for (int i = 0; i < n; i++) s += h[i];
        printf("s=%d\n", s);
        return 0;
      }|}
  in
  let a = run_src ~vendor:Device.Amd src in
  let b = run_src ~vendor:Device.Nvidia src in
  check Alcotest.string "same output on both vendors" a.Hostexec.output b.Hostexec.output;
  check Alcotest.string "expected sum" "s=2080\n" a.Hostexec.output

let () =
  Alcotest.run "runtime"
    [
      ( "modules",
        [
          Alcotest.test_case "globals allocated at load" `Quick test_load_inits_globals;
          Alcotest.test_case "string initializers" `Quick test_load_string_init;
          Alcotest.test_case "stub registration" `Quick test_registration;
          Alcotest.test_case "fatbin section policy" `Quick test_cuda_fatbin_drops_sections;
        ] );
      ( "memory",
        [
          Alcotest.test_case "memcpy roundtrip" `Quick test_memcpy_roundtrip;
          Alcotest.test_case "clock advances" `Quick test_clock_advances;
        ] );
      ( "hostexec",
        [
          Alcotest.test_case "printf formats" `Quick test_printf_formats;
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "instruction accounting" `Quick test_host_instr_counting;
          Alcotest.test_case "unknown extern" `Quick test_unknown_extern_fails;
          Alcotest.test_case "device globals shared" `Quick test_device_global_shared_between_kernels;
          Alcotest.test_case "both vendor flavours" `Quick test_vendor_flavours_run_same_program;
        ] );
    ]
