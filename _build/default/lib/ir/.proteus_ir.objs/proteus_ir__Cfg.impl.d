lib/ir/cfg.ml: Ir List Proteus_support Util
