(* Runtime statistics of the Proteus JIT library: cache behaviour,
   compilation overhead (simulated and real), code-cache sizes, and the
   fault-containment ledger (AOT fallbacks, failures by JIT stage,
   quarantine activity, cache corruption). *)

type t = {
  mutable jit_launches : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable compiles : int;
  mutable jit_overhead_s : float; (* simulated seconds spent off the critical kernel path *)
  mutable compile_work : int; (* optimizer work units *)
  mutable bitcode_bytes : int;
  mutable object_bytes : int;
  mutable real_compile_s : float; (* actual wall-clock of our pipeline *)
  (* decoded-code cache tier: threaded-code programs attached to code
     cache entries; a hit skips decoding on a warm launch *)
  mutable tcode_decodes : int;
  mutable tcode_hits : int;
  (* fault containment *)
  mutable fallbacks : int; (* launches that completed on the AOT kernel after a JIT failure *)
  failures_by_stage : (string, int) Hashtbl.t; (* stage name -> count *)
  mutable quarantine_events : int; (* times a kernel entered quarantine *)
  mutable quarantined_launches : int; (* launches that skipped JIT because of quarantine *)
  mutable quarantine_retries : int; (* JIT retries after a quarantine backoff expired *)
  mutable cache_corruptions : int; (* corrupt/truncated persistent entries discarded *)
  mutable host_hook_errors : int; (* malformed launch calls / unregistered stubs *)
  mutable verify_rejections : int;
      (* launches the PROTEUS_VERIFY gate sent to the AOT kernel because
         post-specialize/post-O3 IR failed verification or KernelSan *)
  (* specialization policy (SpecAdvisor) *)
  mutable spec_skipped_args : int;
      (* annotated argument values dropped from specialization keys by
         the active policy (advise: below-threshold; none: all) *)
  mutable advise_time_s : float; (* wall-clock spent in SpecAdvisor at JIT time *)
  cache_entries_by_policy : (string, int) Hashtbl.t;
      (* policy name -> code-cache entries inserted under that policy *)
}

let create () =
  {
    jit_launches = 0; mem_hits = 0; disk_hits = 0; compiles = 0; jit_overhead_s = 0.0;
    compile_work = 0; bitcode_bytes = 0; object_bytes = 0; real_compile_s = 0.0;
    tcode_decodes = 0; tcode_hits = 0;
    fallbacks = 0; failures_by_stage = Hashtbl.create 8; quarantine_events = 0;
    quarantined_launches = 0; quarantine_retries = 0; cache_corruptions = 0;
    host_hook_errors = 0; verify_rejections = 0;
    spec_skipped_args = 0; advise_time_s = 0.0;
    cache_entries_by_policy = Hashtbl.create 4;
  }

let record_cache_entry t policy =
  let n = Option.value (Hashtbl.find_opt t.cache_entries_by_policy policy) ~default:0 in
  Hashtbl.replace t.cache_entries_by_policy policy (n + 1)

let cache_entries_for t policy =
  Option.value (Hashtbl.find_opt t.cache_entries_by_policy policy) ~default:0

let cache_entries_total t =
  Hashtbl.fold (fun _ n acc -> acc + n) t.cache_entries_by_policy 0

let record_failure t stage =
  let n = Option.value (Hashtbl.find_opt t.failures_by_stage stage) ~default:0 in
  Hashtbl.replace t.failures_by_stage stage (n + 1)

let failures_total t = Hashtbl.fold (fun _ n acc -> acc + n) t.failures_by_stage 0

let stage_failures t =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.failures_by_stage []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

(* The printable ledger as ordered key/value pairs. Segments whose
   counters are all zero are omitted so the quiet case stays short;
   within a segment every field always prints, so the same fields
   always appear in the same order and "column" across runs (the old
   hand-rolled printer drifted: mixed millisecond precisions and
   fields that appeared conditionally mid-line). *)
let to_pairs s =
  let ms x = Printf.sprintf "%.3fms" (x *. 1e3) in
  let base =
    [
      ("launches", string_of_int s.jit_launches);
      ("mem-hits", string_of_int s.mem_hits);
      ("disk-hits", string_of_int s.disk_hits);
      ("compiles", string_of_int s.compiles);
      ("overhead", ms s.jit_overhead_s);
      ("real-compile", ms s.real_compile_s);
      ("tcode-hits", string_of_int s.tcode_hits);
      ("tcode-decodes", string_of_int s.tcode_decodes);
    ]
  in
  let faults =
    if failures_total s = 0 && s.fallbacks = 0 && s.cache_corruptions = 0
       && s.host_hook_errors = 0 && s.quarantined_launches = 0
       && s.quarantine_events = 0 && s.verify_rejections = 0
    then []
    else
      [
        ("fallbacks", string_of_int s.fallbacks);
        ( "failures",
          "["
          ^ String.concat ","
              (List.map (fun (st, n) -> Printf.sprintf "%s:%d" st n) (stage_failures s))
          ^ "]" );
        ("quarantine-events", string_of_int s.quarantine_events);
        ("quarantined-launches", string_of_int s.quarantined_launches);
        ("quarantine-retries", string_of_int s.quarantine_retries);
        ("cache-corruptions", string_of_int s.cache_corruptions);
        ("host-hook-errors", string_of_int s.host_hook_errors);
        ("verify-rejections", string_of_int s.verify_rejections);
      ]
  in
  let policy =
    if s.spec_skipped_args = 0 && s.advise_time_s = 0.0
       && Hashtbl.length s.cache_entries_by_policy = 0
    then []
    else
      [
        ("spec-skipped-args", string_of_int s.spec_skipped_args);
        ("advise-time", ms s.advise_time_s);
        ( "cache-entries",
          "["
          ^ String.concat ","
              (Hashtbl.fold (fun p n acc -> (p, n) :: acc) s.cache_entries_by_policy []
              |> List.sort compare
              |> List.map (fun (p, n) -> Printf.sprintf "%s:%d" p n))
          ^ "]" );
      ]
  in
  base @ faults @ policy

let to_string s =
  "jit " ^ String.concat " " (List.map (fun (k, v) -> k ^ "=" ^ v) (to_pairs s))
