lib/opt/mem2reg.ml: Cfg Dom Hashtbl Ir Konst List Option Pass Proteus_ir Proteus_support Types Util
