lib/backend/isel.ml: Cfg Hashtbl Int64 Ir Konst List Mach Ops Option Printf Proteus_ir Proteus_support Types Uniformity Util
