lib/frontend/parse.ml: Array Ast Format Int64 Lexer List Printf
