lib/ir/types.ml: Format Printf Proteus_support Util
