(* The IR proper: a typed, SSA-after-mem2reg, LLVM-like intermediate
   representation. Registers are dense integers with types recorded in a
   per-function table; blocks are labelled and hold a phi-leading
   instruction list plus one terminator. *)

open Proteus_support

type reg = int

type operand =
  | Reg of reg
  | Imm of Konst.t
  | Glob of string (* address of a module global *)

type instr =
  | IBin of reg * Ops.binop * operand * operand
  | ICmp of reg * Ops.cmpop * operand * operand
  | ISelect of reg * operand * operand * operand
  | ICast of reg * Ops.castop * operand (* destination type is regty of dest *)
  | ILoad of reg * operand
  | IStore of operand * operand (* value, pointer *)
  | IGep of reg * operand * operand (* base pointer, element index *)
  | ICall of reg option * string * operand list
  | IPhi of reg * (string * operand) list
  | IAlloca of reg * Types.ty * int (* element type, count *)

type term =
  | TBr of string
  | TCondBr of operand * string * string
  | TRet of operand option
  | TUnreachable

type block = {
  mutable label : string;
  mutable insts : instr list;
  mutable term : term;
}

type fkind = Kernel | Device | Host

type attrs = {
  mutable launch_bounds : (int * int) option; (* max threads/block, min blocks/CU *)
}

type func = {
  fname : string;
  params : (string * reg) list;
  ret : Types.ty;
  kind : fkind;
  is_decl : bool;
  mutable blocks : block list; (* entry block first *)
  regtys : Types.ty Util.Vec.t;
  attrs : attrs;
}

type ginit = InitZero | InitConsts of Konst.t list | InitString of string

type gvar = {
  gname : string;
  gty : Types.ty;
  gspace : Types.addrspace;
  ginit : ginit;
  gconst : bool;
  gextern : bool;
}

(* Mirrors llvm.global.annotations: ties a function symbol to the
   "jit" key and the 1-based argument indices to specialize. *)
type annotation = { afunc : string; akey : string; aargs : int list }

type target = THost | TDevice

type modul = {
  mid : string; (* unique module identifier bound to source code *)
  mname : string;
  mtarget : target;
  mutable globals : gvar list;
  mutable funcs : func list;
  mutable annotations : annotation list;
  mutable ctors : string list; (* global constructors, run at program load *)
  mutable mgen : int; (* in-place mutation generation, see [touch_module] *)
}

(* Every in-place IR mutator (the pass manager, the specializer, fault
   injectors) must bump the module's generation so caches keyed on
   module identity (Analysis.Normalize) observe the mutation. *)
let touch_module (m : modul) = m.mgen <- m.mgen + 1

(* ------------------------------------------------------------------ *)
(* Construction helpers                                                *)

let create_func ?(kind = Device) ?(is_decl = false) name params ret =
  let regtys = Util.Vec.create Types.TVoid in
  let params =
    List.map
      (fun (n, ty) ->
        Util.Vec.push regtys ty;
        (n, Util.Vec.length regtys - 1))
      params
  in
  {
    fname = name;
    params;
    ret;
    kind;
    is_decl;
    blocks = [];
    regtys;
    attrs = { launch_bounds = None };
  }

let fresh_reg f ty =
  Util.Vec.push f.regtys ty;
  Util.Vec.length f.regtys - 1

let nregs f = Util.Vec.length f.regtys
let reg_ty f r = Util.Vec.get f.regtys r

let add_block f label =
  let b = { label; insts = []; term = TUnreachable } in
  f.blocks <- f.blocks @ [ b ];
  b

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> Util.failf "Ir.entry: function %s has no blocks" f.fname

let find_block f label =
  try List.find (fun b -> b.label = label) f.blocks
  with Not_found -> Util.failf "Ir.find_block: no block %s in %s" label f.fname

let find_func m name =
  try List.find (fun f -> f.fname = name) m.funcs
  with Not_found -> Util.failf "Ir.find_func: no function %s in module %s" name m.mname

let find_func_opt m name = List.find_opt (fun f -> f.fname = name) m.funcs

let find_global m name =
  try List.find (fun g -> g.gname = name) m.globals
  with Not_found -> Util.failf "Ir.find_global: no global %s in module %s" name m.mname

let find_global_opt m name = List.find_opt (fun g -> g.gname = name) m.globals

(* ------------------------------------------------------------------ *)
(* Generic traversal                                                   *)

let def_of = function
  | IBin (d, _, _, _)
  | ICmp (d, _, _, _)
  | ISelect (d, _, _, _)
  | ICast (d, _, _)
  | ILoad (d, _)
  | IGep (d, _, _)
  | IPhi (d, _)
  | IAlloca (d, _, _) ->
      Some d
  | ICall (d, _, _) -> d
  | IStore _ -> None

let operands_of = function
  | IBin (_, _, a, b) | ICmp (_, _, a, b) | IGep (_, a, b) | IStore (a, b) -> [ a; b ]
  | ISelect (_, a, b, c) -> [ a; b; c ]
  | ICast (_, _, a) | ILoad (_, a) -> [ a ]
  | ICall (_, _, args) -> args
  | IPhi (_, incoming) -> List.map snd incoming
  | IAlloca _ -> []

let term_operands = function
  | TCondBr (c, _, _) -> [ c ]
  | TRet (Some v) -> [ v ]
  | TBr _ | TRet None | TUnreachable -> []

let map_operands fn = function
  | IBin (d, op, a, b) -> IBin (d, op, fn a, fn b)
  | ICmp (d, op, a, b) -> ICmp (d, op, fn a, fn b)
  | ISelect (d, a, b, c) -> ISelect (d, fn a, fn b, fn c)
  | ICast (d, op, a) -> ICast (d, op, fn a)
  | ILoad (d, a) -> ILoad (d, fn a)
  | IStore (v, p) -> IStore (fn v, fn p)
  | IGep (d, p, i) -> IGep (d, fn p, fn i)
  | ICall (d, callee, args) -> ICall (d, callee, List.map fn args)
  | IPhi (d, incoming) -> IPhi (d, List.map (fun (l, v) -> (l, fn v)) incoming)
  | IAlloca _ as i -> i

let map_term_operands fn = function
  | TCondBr (c, t, e) -> TCondBr (fn c, t, e)
  | TRet (Some v) -> TRet (Some (fn v))
  | (TBr _ | TRet None | TUnreachable) as t -> t

let successors = function
  | TBr l -> [ l ]
  | TCondBr (_, t, e) -> if t = e then [ t ] else [ t; e ]
  | TRet _ | TUnreachable -> []

let iter_instrs f fn = List.iter (fun b -> List.iter fn b.insts) f.blocks

(* Replace every use of register [r] with operand [v] across the function. *)
let replace_uses f r v =
  let fn o = match o with Reg r' when r' = r -> v | _ -> o in
  List.iter
    (fun b ->
      b.insts <- List.map (map_operands fn) b.insts;
      b.term <- map_term_operands fn b.term)
    f.blocks

(* Count of uses of each register, over instructions and terminators. *)
let use_counts f =
  let counts = Array.make (nregs f) 0 in
  let count o = match o with Reg r -> counts.(r) <- counts.(r) + 1 | _ -> () in
  List.iter
    (fun b ->
      List.iter (fun i -> List.iter count (operands_of i)) b.insts;
      List.iter count (term_operands b.term))
    f.blocks;
  counts

(* Retarget phi entries when a predecessor block is renamed. *)
let retarget_phis f ~from_label ~to_label =
  List.iter
    (fun b ->
      b.insts <-
        List.map
          (function
            | IPhi (d, incoming) ->
                IPhi
                  ( d,
                    List.map
                      (fun (l, v) -> ((if l = from_label then to_label else l), v))
                      incoming )
            | i -> i)
          b.insts)
    f.blocks

let retarget_term t ~from_label ~to_label =
  let r l = if l = from_label then to_label else l in
  match t with
  | TBr l -> TBr (r l)
  | TCondBr (c, a, b) -> TCondBr (c, r a, r b)
  | (TRet _ | TUnreachable) as t -> t

(* ------------------------------------------------------------------ *)
(* Deep copies: the JIT specializes clones, never the AOT module.      *)

let clone_block b = { label = b.label; insts = b.insts; term = b.term }

let clone_func f =
  {
    f with
    blocks = List.map clone_block f.blocks;
    regtys = Util.Vec.copy f.regtys;
    attrs = { launch_bounds = f.attrs.launch_bounds };
  }

let clone_module m =
  {
    m with
    globals = m.globals;
    funcs = List.map clone_func m.funcs;
    annotations = m.annotations;
    ctors = m.ctors;
  }

(* ------------------------------------------------------------------ *)
(* Intrinsic names understood by backends and interpreters.            *)

module Intrinsics = struct
  let tid_x = "gpu.tid.x"
  let tid_y = "gpu.tid.y"
  let tid_z = "gpu.tid.z"
  let ctaid_x = "gpu.ctaid.x"
  let ctaid_y = "gpu.ctaid.y"
  let ctaid_z = "gpu.ctaid.z"
  let ntid_x = "gpu.ntid.x"
  let ntid_y = "gpu.ntid.y"
  let ntid_z = "gpu.ntid.z"
  let nctaid_x = "gpu.nctaid.x"
  let nctaid_y = "gpu.nctaid.y"
  let nctaid_z = "gpu.nctaid.z"
  let barrier = "gpu.barrier"

  (* Source-location marker: [call void @dbg.loc(line, col)]. Emitted by
     the frontend under [~debug:true], consumed by the static analyses
     for finding provenance, stripped at the head of the optimization
     pipeline, and a no-op everywhere else. *)
  let dbg_loc = "dbg.loc"
  let atomic_add_f32 = "gpu.atomic.add.f32"
  let atomic_add_f64 = "gpu.atomic.add.f64"
  let atomic_add_i32 = "gpu.atomic.add.i32"

  let math_unary =
    [ "math.sqrt"; "math.rsqrt"; "math.exp"; "math.log"; "math.sin"; "math.cos";
      "math.fabs"; "math.floor"; "math.ceil"; "math.tanh" ]

  let math_binary = [ "math.pow"; "math.atan2" ]
  let math_ternary = [ "math.fma" ]

  let is_gpu_query n =
    List.mem n
      [ tid_x; tid_y; tid_z; ctaid_x; ctaid_y; ctaid_z; ntid_x; ntid_y; ntid_z;
        nctaid_x; nctaid_y; nctaid_z ]

  let is_math n = List.mem n math_unary || List.mem n math_binary || List.mem n math_ternary
  let is_atomic n = List.mem n [ atomic_add_f32; atomic_add_f64; atomic_add_i32 ]
  let is_intrinsic n =
    is_gpu_query n || is_math n || is_atomic n || n = barrier || n = dbg_loc

  let eval_math_unary n x =
    match n with
    | "math.sqrt" -> sqrt x
    | "math.rsqrt" -> 1.0 /. sqrt x
    | "math.exp" -> exp x
    | "math.log" -> log x
    | "math.sin" -> sin x
    | "math.cos" -> cos x
    | "math.fabs" -> Float.abs x
    | "math.floor" -> Float.floor x
    | "math.ceil" -> Float.ceil x
    | "math.tanh" -> tanh x
    | _ -> Util.failf "eval_math_unary: %s" n

  let eval_math_binary n x y =
    match n with
    | "math.pow" -> Float.pow x y
    | "math.atan2" -> Float.atan2 x y
    | _ -> Util.failf "eval_math_binary: %s" n
end

(* Operand type, given the containing function and module. *)
let operand_ty m f = function
  | Reg r -> reg_ty f r
  | Imm k -> Konst.ty_of k
  | Glob g -> (
      match find_global_opt m g with
      | Some gv ->
          Types.TPtr ((match gv.gty with Types.TArr (e, _) -> e | t -> t), gv.gspace)
      | None -> (
          match find_func_opt m g with
          | Some _ -> Types.TPtr (Types.TVoid, Types.AS_global)
          | None -> Util.failf "operand_ty: unknown global @%s" g))
