lib/backend/ptxas.ml: Ir List Mach Option Proteus_ir Ptx Regalloc
