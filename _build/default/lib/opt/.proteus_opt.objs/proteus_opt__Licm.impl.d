lib/opt/licm.ml: Cfg Dom Ir List Loopinfo Pass Proteus_ir Proteus_support Util
