lib/opt/pass.ml: Ir List Proteus_ir Proteus_support Util
