(* Proteus JIT configuration knobs, matching the paper's experiment
   modes: None (JIT with O3 but no specialization, Fig. 6), LB, RCF and
   LB+RCF (Sec. 4.5), with in-memory and persistent caching toggles,
   plus the fault-containment policy (fault injection plan and kernel
   quarantine thresholds). *)

type t = {
  enable_rcf : bool; (* runtime constant folding of kernel arguments *)
  enable_lb : bool; (* dynamic launch bounds *)
  use_mem_cache : bool;
  persistent_dir : string option; (* None disables the disk cache *)
  fault_plan : Fault.plan; (* programmatic fault injection; [] = none *)
  quarantine_threshold : int;
      (* consecutive JIT failures of one (mid, sym) before the kernel is
         quarantined to the AOT path; 0 disables quarantine *)
  quarantine_backoff : int;
      (* launches a quarantined kernel skips JIT before one retry is
         allowed (doubling on repeated failure); 0 = quarantine forever *)
  verify_jit : bool;
      (* PROTEUS_VERIFY: re-run the IR verifier + KernelSan on
         post-specialize and post-O3 IR; a violation becomes a counted
         AOT fallback instead of reaching codegen *)
  exec_domains : int;
      (* PROTEUS_EXEC_DOMAINS: domains the executor schedules
         thread-blocks across; 0 = automatic (the executor picks the
         recommended domain count); 1 forces serial execution *)
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 0 -> n | _ -> default)
  | None -> default

let env_bool name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" | "" -> false
      | _ -> default)
  | None -> default

let default =
  {
    enable_rcf = true;
    enable_lb = true;
    use_mem_cache = true;
    persistent_dir = None;
    fault_plan = [];
    quarantine_threshold = env_int "PROTEUS_QUARANTINE_THRESHOLD" 3;
    quarantine_backoff = env_int "PROTEUS_QUARANTINE_BACKOFF" 16;
    verify_jit = env_bool "PROTEUS_VERIFY" false;
    exec_domains = env_int "PROTEUS_EXEC_DOMAINS" 0;
  }

(* Paper mode names *)
let mode_none = { default with enable_rcf = false; enable_lb = false }
let mode_lb = { default with enable_rcf = false; enable_lb = true }
let mode_rcf = { default with enable_rcf = true; enable_lb = false }
let mode_lb_rcf = default

let mode_name c =
  match (c.enable_rcf, c.enable_lb) with
  | false, false -> "None"
  | false, true -> "LB"
  | true, false -> "RCF"
  | true, true -> "LB+RCF"
