(* Dominator tree and dominance frontiers, after Cooper, Harvey &
   Kennedy, "A Simple, Fast Dominance Algorithm". *)

open Proteus_support

type t = {
  cfg : Cfg.t;
  idom : string Util.Smap.t;            (* immediate dominator; entry maps to itself *)
  children : string list Util.Smap.t;   (* dominator-tree children *)
  frontier : Util.Sset.t Util.Smap.t;   (* dominance frontier *)
  order : int Util.Smap.t;              (* RPO index, for intersect *)
}

let compute (cfg : Cfg.t) =
  let rpo = cfg.rpo in
  let order =
    List.fold_left
      (fun (m, i) l -> (Util.Smap.add l i m, i + 1))
      (Util.Smap.empty, 0) rpo
    |> fst
  in
  let entry = match rpo with e :: _ -> e | [] -> Util.failf "Dom.compute: empty CFG" in
  let idom = ref (Util.Smap.singleton entry entry) in
  let intersect a b =
    let rec go a b =
      if a = b then a
      else
        let ia = Util.Smap.find a order and ib = Util.Smap.find b order in
        if ia > ib then go (Util.Smap.find a !idom) b else go a (Util.Smap.find b !idom)
    in
    go a b
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun b ->
        if b <> entry then begin
          let processed_preds =
            List.filter
              (fun p -> Util.Smap.mem p !idom && Util.Smap.mem p order)
              (Cfg.preds cfg b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if
                (not (Util.Smap.mem b !idom))
                || Util.Smap.find b !idom <> new_idom
              then begin
                idom := Util.Smap.add b new_idom !idom;
                changed := true
              end
        end)
      rpo
  done;
  let children =
    Util.Smap.fold
      (fun b d acc ->
        if b = entry then acc
        else
          let cur = try Util.Smap.find d acc with Not_found -> [] in
          Util.Smap.add d (cur @ [ b ]) acc)
      !idom Util.Smap.empty
  in
  (* Dominance frontiers. *)
  let frontier = ref Util.Smap.empty in
  let add_df n x =
    let cur = try Util.Smap.find n !frontier with Not_found -> Util.Sset.empty in
    frontier := Util.Smap.add n (Util.Sset.add x cur) !frontier
  in
  List.iter
    (fun b ->
      let preds = List.filter (fun p -> Util.Smap.mem p order) (Cfg.preds cfg b) in
      if List.length preds >= 2 then
        List.iter
          (fun p ->
            let rec runner r =
              if r <> Util.Smap.find b !idom then begin
                add_df r b;
                runner (Util.Smap.find r !idom)
              end
            in
            runner p)
          preds)
    rpo;
  { cfg; idom = !idom; children; frontier = !frontier; order }

let idom t l = Util.Smap.find_opt l t.idom
let children t l = try Util.Smap.find l t.children with Not_found -> []
let frontier t l = try Util.Smap.find l t.frontier with Not_found -> Util.Sset.empty

(* Does [a] dominate [b]? Walk [b]'s idom chain. *)
let dominates t a b =
  let rec go b = if a = b then true else match idom t b with
    | Some d when d <> b -> go d
    | _ -> false
  in
  go b

(* Preorder walk of the dominator tree from the entry. *)
let preorder t =
  let entry = match t.cfg.Cfg.rpo with e :: _ -> e | [] -> Util.failf "Dom.preorder" in
  let rec go l = l :: List.concat_map go (children t l) in
  go entry
