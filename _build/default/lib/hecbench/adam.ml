(* ADAM optimizer (machine learning). Elementwise moment update with a
   tail of scalar hyper-parameters, all annotated for specialization -
   mirroring Listing 1 of the paper. RCF is the dominant optimization:
   folding grad_scale = 1 deletes the scaling division, decay = 0 kills
   the weight-decay term (and its parameter load), and the
   bias-correction pow() chain folds to literals instead of being
   recomputed per thread. *)

let scale_n = 16384 (* vector size (paper input: 160000 1600 1000, scaled) *)
let steps = 100 (* optimizer steps (kernel launches) *)

let source =
  Printf.sprintf
    {|
// ADAM optimizer kernel (HeCBench adam, miniaturised)
__global__ __attribute__((annotate("jit", 5, 6, 7, 8, 9, 10, 11, 13)))
void adam(float* p, float* m, float* v, float* g,
          float b1, float b2, float eps, float grad_scale,
          float step_size, int time_step, int vector_size,
          int mode, float decay) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  int stride = gridDim.x * blockDim.x;
  // hyper-parameter schedule: every input is a specialized scalar, so
  // JIT runtime-constant folding deletes this entire preamble
  float t = (float)time_step;
  float bias1 = 1.0f - powf(b1, t);
  float bias2 = 1.0f - powf(b2, t);
  float gs = 1.0f / grad_scale;
  float warm = fminf(1.0f, t / (t + 8.0f));
  float cool = expf(-0.002f * t) * 0.5f + 0.5f;
  float lr0 = step_size * sqrtf(bias2) / bias1;
  float lr = lr0 * warm * cool * (1.0f + 0.1f * cosf(t * 0.01f));
  float wd = decay * step_size * (1.0f - powf(0.99f, t));
  float e1 = eps * sqrtf(bias2) * (1.0f + logf(1.0f + t) * 0.01f);
  for (int j = i; j < vector_size; j += stride) {
    float scaled_grad = g[j] * gs;
    if (mode == 1) { scaled_grad = scaled_grad + wd * p[j]; }
    float mj = b1 * m[j] + (1.0f - b1) * scaled_grad;
    float vj = b2 * v[j] + (1.0f - b2) * scaled_grad * scaled_grad;
    float denom = sqrtf(vj) + e1;
    float update = mj / denom + wd * p[j];
    p[j] = p[j] - lr * update;
    m[j] = mj;
    v[j] = vj;
  }
}

int main() {
  int n = %d;
  int steps = %d;
  long bytes = n * 4;
  float* hp = (float*)malloc(bytes);
  float* hg = (float*)malloc(bytes);
  for (int i = 0; i < n; i++) {
    hp[i] = 1.0f;
    int r = (i * 1103515245 + 12345) & 65535;
    hg[i] = ((float)r / 65536.0f) - 0.5f;
  }
  float* dp = (float*)cudaMalloc(bytes);
  float* dm = (float*)cudaMalloc(bytes);
  float* dv = (float*)cudaMalloc(bytes);
  float* dg = (float*)cudaMalloc(bytes);
  cudaMemcpyHtoD(dp, hp, bytes);
  cudaMemcpyHtoD(dg, hg, bytes);
  cudaMemcpyHtoD(dm, hp, bytes); // reuse as zero-ish init
  cudaMemcpyHtoD(dv, hp, bytes);
  for (int s = 0; s < steps; s++) {
    adam<<<32, 256>>>(dp, dm, dv, dg,
                      0.9f, 0.999f, 1e-8f, 1.0f, 0.001f, 4, n, 0, 0.0f);
  }
  cudaDeviceSynchronize();
  cudaMemcpyDtoH(hp, dp, bytes);
  double sum = 0.0;
  for (int i = 0; i < n; i++) { sum = sum + hp[i]; }
  printf("adam checksum=%%g\n", sum / n);
  return 0;
}
|}
    scale_n steps

let app : App.t =
  {
    App.name = "ADAM";
    domain = "Machine Learning";
    input_desc = "160000 1600 1000 (scaled: 16384 elems, 100 steps)";
    source;
    kernels = [ "adam" ];
    supports_jitify = true;
    check = (fun out -> App.finite_check "checksum" out);
  }
