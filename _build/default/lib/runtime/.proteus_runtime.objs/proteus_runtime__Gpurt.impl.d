lib/runtime/gpurt.ml: Bytes Char Clock Costmodel Counters Device Exec Gmem Hashtbl Int64 Ir Konst L2cache List Mach Proteus_backend Proteus_gpu Proteus_ir Proteus_support String Timing Types Util
