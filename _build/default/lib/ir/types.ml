(* Type system of the IR: a small, typed, LLVM-like universe. *)

open Proteus_support

type addrspace =
  | AS_global   (* device global memory (or host heap for host modules) *)
  | AS_shared   (* per-block scratchpad (LDS / shared memory) *)
  | AS_scratch  (* per-thread spill/stack memory *)

type ty =
  | TVoid
  | TBool
  | TInt of int    (* bit width: 32 or 64 *)
  | TFloat of int  (* bit width: 32 or 64 *)
  | TPtr of ty * addrspace
  | TArr of ty * int

let i32 = TInt 32
let i64 = TInt 64
let f32 = TFloat 32
let f64 = TFloat 64
let ptr ?(space = AS_global) t = TPtr (t, space)

let rec equal a b =
  match (a, b) with
  | TVoid, TVoid | TBool, TBool -> true
  | TInt x, TInt y | TFloat x, TFloat y -> x = y
  | TPtr (t, s), TPtr (t', s') -> s = s' && equal t t'
  | TArr (t, n), TArr (t', n') -> n = n' && equal t t'
  | (TVoid | TBool | TInt _ | TFloat _ | TPtr _ | TArr _), _ -> false

let is_int = function TInt _ | TBool -> true | _ -> false
let is_float = function TFloat _ -> true | _ -> false
let is_ptr = function TPtr _ -> true | _ -> false

let pointee = function
  | TPtr (t, _) -> t
  | t -> Util.failf "pointee: not a pointer type (%s)" (match t with TVoid -> "void" | _ -> "_")

let space_of = function
  | TPtr (_, s) -> s
  | _ -> Util.failf "space_of: not a pointer type"

(* Byte size used for GEP scaling and memory layout. Pointers are 64-bit. *)
let rec size_of = function
  | TVoid -> 0
  | TBool -> 1
  | TInt b | TFloat b -> b / 8
  | TPtr _ -> 8
  | TArr (t, n) -> size_of t * n

let align_of t = match t with TArr (e, _) -> size_of e | _ -> max 1 (size_of t)

let rec to_string = function
  | TVoid -> "void"
  | TBool -> "i1"
  | TInt b -> Printf.sprintf "i%d" b
  | TFloat 32 -> "float"
  | TFloat _ -> "double"
  | TPtr (t, s) ->
      let sp = match s with AS_global -> "" | AS_shared -> " addrspace(3)" | AS_scratch -> " addrspace(5)" in
      to_string t ^ "*" ^ sp
  | TArr (t, n) -> Printf.sprintf "[%d x %s]" n (to_string t)

let pp fmt t = Format.pp_print_string fmt (to_string t)

let encode w t =
  let open Util.Bytesio.W in
  let rec go t =
    match t with
    | TVoid -> u8 w 0
    | TBool -> u8 w 1
    | TInt b ->
        u8 w 2;
        u8 w b
    | TFloat b ->
        u8 w 3;
        u8 w b
    | TPtr (t, s) ->
        u8 w 4;
        u8 w (match s with AS_global -> 0 | AS_shared -> 1 | AS_scratch -> 2);
        go t
    | TArr (t, n) ->
        u8 w 5;
        int w n;
        go t
  in
  go t

let decode r =
  let open Util.Bytesio.R in
  let rec go () =
    match u8 r with
    | 0 -> TVoid
    | 1 -> TBool
    | 2 -> TInt (u8 r)
    | 3 -> TFloat (u8 r)
    | 4 ->
        let s = match u8 r with 0 -> AS_global | 1 -> AS_shared | _ -> AS_scratch in
        let t = go () in
        TPtr (t, s)
    | 5 ->
        let n = int r in
        let t = go () in
        TArr (t, n)
    | k -> Util.failf "Types.decode: bad tag %d" k
  in
  go ()
