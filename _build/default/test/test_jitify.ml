(* Jitify baseline tests: source-string compilation, instantiation
   caching, platform restrictions and correctness against AOT. *)

open Proteus_ir
open Proteus_gpu
open Proteus_runtime
open Proteus_jitify

let check = Alcotest.check

let kernel_src =
  {|__global__ __attribute__((annotate("jit", 1, 4)))
    void daxpy(double a, double* x, double* y, int n) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      if (i < n) { y[i] = a * x[i] + y[i]; }
    }|}

let test_nvidia_only () =
  let rt = Gpurt.create (Device.by_vendor Device.Amd) in
  Alcotest.(check bool) "AMD rejected" true
    (try ignore (Jitify.create rt); false with Jitify.Unsupported _ -> true)

let test_launch_and_cache () =
  let rt = Gpurt.create (Device.by_vendor Device.Nvidia) in
  let jt = Jitify.create rt in
  let prog = Jitify.program ~name:"daxpy" kernel_src in
  let n = 128 in
  let x = Gpurt.dmalloc rt (n * 8) and y = Gpurt.dmalloc rt (n * 8) in
  for i = 0 to n - 1 do
    Proteus_gpu.Gmem.write_f64 rt.Gpurt.mem (Int64.add x (Int64.of_int (i * 8))) (float_of_int i);
    Proteus_gpu.Gmem.write_f64 rt.Gpurt.mem (Int64.add y (Int64.of_int (i * 8))) 0.5
  done;
  let launch () =
    Jitify.launch jt prog ~sym:"daxpy"
      ~consts:[ (1, Konst.kf64 2.0); (4, Konst.ki32 n) ]
      ~grid:2 ~block:64
      ~args:[| Konst.kf64 2.0; Konst.kint ~bits:64 x; Konst.kint ~bits:64 y; Konst.ki32 n |]
  in
  launch ();
  check Alcotest.int "first launch compiles" 1 jt.Jitify.compiles;
  launch ();
  check Alcotest.int "second launch cached" 1 jt.Jitify.compiles;
  (* different template constant: new instantiation *)
  Jitify.launch jt prog ~sym:"daxpy"
    ~consts:[ (1, Konst.kf64 3.0); (4, Konst.ki32 n) ]
    ~grid:2 ~block:64
    ~args:[| Konst.kf64 3.0; Konst.kint ~bits:64 x; Konst.kint ~bits:64 y; Konst.ki32 n |];
  check Alcotest.int "new constants recompile" 2 jt.Jitify.compiles;
  (* value check: y = 0.5 + 2i + 2i + 3i = 0.5 + 7i *)
  for i = 0 to n - 1 do
    let v = Proteus_gpu.Gmem.read_f64 rt.Gpurt.mem (Int64.add y (Int64.of_int (i * 8))) in
    if v <> 0.5 +. (7.0 *. float_of_int i) then Alcotest.failf "i=%d v=%g" i v
  done

let test_unknown_kernel () =
  let rt = Gpurt.create (Device.by_vendor Device.Nvidia) in
  let jt = Jitify.create rt in
  let prog = Jitify.program ~name:"p" kernel_src in
  Alcotest.(check bool) "unknown symbol" true
    (try ignore (Jitify.instantiate jt prog ~sym:"nope" ~consts:[]); false
     with Jitify.Unsupported _ -> true)

let test_device_globals_unsupported () =
  let rt = Gpurt.create (Device.by_vendor Device.Nvidia) in
  let jt = Jitify.create rt in
  let prog =
    Jitify.program ~name:"g"
      {|__device__ double knob;
        __global__ void k(double* o) { o[0] = knob; }|}
  in
  Alcotest.(check bool) "device globals rejected (LULESH mechanism)" true
    (try ignore (Jitify.instantiate jt prog ~sym:"k" ~consts:[]); false
     with Jitify.Unsupported _ -> true)

let test_overhead_charged () =
  let rt = Gpurt.create (Device.by_vendor Device.Nvidia) in
  let jt = Jitify.create rt in
  let prog = Jitify.program ~name:"d" kernel_src in
  let t0 = Clock.read rt.Gpurt.clock in
  ignore (Jitify.instantiate jt prog ~sym:"daxpy" ~consts:[]);
  Alcotest.(check bool) "clock charged" true (Clock.read rt.Gpurt.clock > t0);
  Alcotest.(check bool) "overhead recorded" true (jt.Jitify.compile_overhead_s > 0.0)

let () =
  Alcotest.run "jitify"
    [
      ( "jitify",
        [
          Alcotest.test_case "NVIDIA only" `Quick test_nvidia_only;
          Alcotest.test_case "launch + instantiation cache" `Quick test_launch_and_cache;
          Alcotest.test_case "unknown kernel" `Quick test_unknown_kernel;
          Alcotest.test_case "device globals unsupported" `Quick test_device_globals_unsupported;
          Alcotest.test_case "overhead charged" `Quick test_overhead_charged;
        ] );
    ]
