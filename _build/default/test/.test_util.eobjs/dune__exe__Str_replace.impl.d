test/str_replace.ml: String
