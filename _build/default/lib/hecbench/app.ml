(* Common shape of a HeCBench mini-app: an annotated Kernel-C program
   (kernels + host main), its Table-1 metadata, and a validation hook
   over the program's printed output. *)

type t = {
  name : string;
  domain : string;
  input_desc : string; (* Table 1 "Input" column *)
  source : string;
  kernels : string list; (* kernel symbols, for the per-kernel analyses *)
  supports_jitify : bool; (* LULESH: Jitify cannot handle it *)
  check : string -> bool;
}

(* Parse "key=value" tokens out of program output. *)
let find_value (output : string) (key : string) : float option =
  let rec scan = function
    | [] -> None
    | tok :: rest ->
        let prefix = key ^ "=" in
        if
          String.length tok > String.length prefix
          && String.sub tok 0 (String.length prefix) = prefix
        then
          float_of_string_opt
            (String.sub tok (String.length prefix)
               (String.length tok - String.length prefix))
        else scan rest
  in
  scan
    (String.split_on_char ' '
       (String.concat " " (String.split_on_char '\n' output)))

let close ?(tol = 1e-6) a b =
  let scale = Float.max 1.0 (Float.max (Float.abs a) (Float.abs b)) in
  Float.abs (a -. b) /. scale < tol

(* a checker asserting key=value appears and is finite *)
let finite_check key output =
  match find_value output key with
  | Some v -> Float.is_finite v
  | None -> false
