(* Compiler driver: source text -> AOT-compiled "executable" (host IR
   module + embedded fatbinary), optionally with the Proteus plugin
   enabled; and a program runner that executes the host module against a
   fresh simulated GPU with the Proteus JIT runtime installed. *)

open Proteus_support
open Proteus_ir
open Proteus_frontend
open Proteus_backend
open Proteus_gpu
open Proteus_runtime
open Proteus_core

type mode = Aot | Proteus

type exe = {
  name : string;
  vendor : Device.vendor;
  mode : mode;
  host : Ir.modul;
  fatbin : Mach.obj;
  source : string;
  ptx_bytes : int;
  (* build metrics (Fig. 5) *)
  build_wall_s : float; (* real wall-clock of this AOT compilation *)
  build_work : int; (* optimizer work units spent at build time *)
}

let frontend_vendor = function
  | Device.Amd -> Lower.Hip
  | Device.Nvidia -> Lower.Cuda

(* AOT compilation: split compile, optionally run the Proteus plugin
   (device extraction before optimization; host rewriting), O3-optimize
   both sides, compile the device side with the vendor backend, embed. *)
let compile ?(name = "app") ?(diagnostics = true) ?(werror = false)
    ?(advise = false) ~(vendor : Device.vendor) ~(mode : mode) (source : string) : exe =
  let t0 = Unix.gettimeofday () in
  let u = Compile.compile ~name ~vendor:(frontend_vendor vendor) source in
  let device = u.Compile.device and host = u.Compile.host in
  let sections =
    match mode with
    | Proteus ->
        let r = Plugin.run_device ~diagnostics ~werror ~advise ~vendor device in
        Plugin.run_host ~inferred:r.Plugin.inferred ~vendor host;
        r.Plugin.dsections
    | Aot -> []
  in
  let dev_stats = Proteus_opt.Pipeline.optimize_o3 device in
  let host_stats = Proteus_opt.Pipeline.optimize_o3 host in
  let obj, ptx =
    match vendor with
    | Device.Amd -> Hip.aot_compile_device device
    | Device.Nvidia -> Cuda.aot_compile_device device
  in
  let obj = { obj with Mach.sections = obj.Mach.sections @ sections } in
  let fatbin =
    match vendor with
    | Device.Amd -> Hip.embed_fatbin obj
    | Device.Nvidia -> Cuda.embed_fatbin obj
  in
  Verify.verify_module host;
  {
    name;
    vendor;
    mode;
    host;
    fatbin;
    source;
    ptx_bytes = String.length ptx;
    build_wall_s = Unix.gettimeofday () -. t0;
    build_work = dev_stats.Proteus_opt.Pass.work + host_stats.Proteus_opt.Pass.work;
  }

type run_result = {
  exit_code : int;
  output : string;
  end_to_end_s : float; (* simulated *)
  kernel_time_s : float; (* simulated time spent in kernels *)
  jit : Stats.t option;
  cache_bytes : int; (* persistent cache size after the run *)
  rt : Gpurt.ctx; (* post-run context, for profiling reports *)
}

(* Execute a compiled program on a fresh simulated device. *)
let run ?(config = Config.default) ?(cost = Costmodel.default) (exe : exe) : run_result =
  let device = Device.by_vendor exe.vendor in
  let rt = Gpurt.create ~cost device in
  (* loading the executable loads the embedded fatbinary *)
  let _lm = Gpurt.load_module rt exe.fatbin in
  let jit =
    match exe.mode with Proteus -> Some (Jit.create ~config rt exe.vendor) | Aot -> None
  in
  let extra =
    Option.map (fun j -> fun h name args -> Jit.host_hook j h name args) jit
  in
  let result = Hostexec.run ?extra rt exe.host in
  {
    exit_code = result.Hostexec.exit_code;
    output = result.Hostexec.output;
    end_to_end_s = result.Hostexec.end_to_end_s;
    kernel_time_s = Gpurt.total_kernel_time rt;
    jit = Option.map (fun j -> j.Jit.stats) jit;
    cache_bytes =
      (match jit with Some j -> Cachestore.persistent_size j.Jit.cache | None -> 0);
    rt;
  }

let _ = Util.failf
