(* Runtime statistics of the Proteus JIT library: cache behaviour,
   compilation overhead (simulated and real), code-cache sizes, and the
   fault-containment ledger (AOT fallbacks, failures by JIT stage,
   quarantine activity, cache corruption). *)

type t = {
  mutable jit_launches : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable compiles : int;
  mutable jit_overhead_s : float; (* simulated seconds spent off the critical kernel path *)
  mutable compile_work : int; (* optimizer work units *)
  mutable bitcode_bytes : int;
  mutable object_bytes : int;
  mutable real_compile_s : float; (* actual wall-clock of our pipeline *)
  (* decoded-code cache tier: threaded-code programs attached to code
     cache entries; a hit skips decoding on a warm launch *)
  mutable tcode_decodes : int;
  mutable tcode_hits : int;
  (* fault containment *)
  mutable fallbacks : int; (* launches that completed on the AOT kernel after a JIT failure *)
  failures_by_stage : (string, int) Hashtbl.t; (* stage name -> count *)
  mutable quarantine_events : int; (* times a kernel entered quarantine *)
  mutable quarantined_launches : int; (* launches that skipped JIT because of quarantine *)
  mutable quarantine_retries : int; (* JIT retries after a quarantine backoff expired *)
  mutable cache_corruptions : int; (* corrupt/truncated persistent entries discarded *)
  mutable host_hook_errors : int; (* malformed launch calls / unregistered stubs *)
  mutable verify_rejections : int;
      (* launches the PROTEUS_VERIFY gate sent to the AOT kernel because
         post-specialize/post-O3 IR failed verification or KernelSan *)
}

let create () =
  {
    jit_launches = 0; mem_hits = 0; disk_hits = 0; compiles = 0; jit_overhead_s = 0.0;
    compile_work = 0; bitcode_bytes = 0; object_bytes = 0; real_compile_s = 0.0;
    tcode_decodes = 0; tcode_hits = 0;
    fallbacks = 0; failures_by_stage = Hashtbl.create 8; quarantine_events = 0;
    quarantined_launches = 0; quarantine_retries = 0; cache_corruptions = 0;
    host_hook_errors = 0; verify_rejections = 0;
  }

let record_failure t stage =
  let n = Option.value (Hashtbl.find_opt t.failures_by_stage stage) ~default:0 in
  Hashtbl.replace t.failures_by_stage stage (n + 1)

let failures_total t = Hashtbl.fold (fun _ n acc -> acc + n) t.failures_by_stage 0

let stage_failures t =
  Hashtbl.fold (fun s n acc -> (s, n) :: acc) t.failures_by_stage []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let to_string s =
  let base =
    Printf.sprintf
      "jit launches=%d mem-hits=%d disk-hits=%d compiles=%d overhead=%.3fms \
       real-compile=%.1fms tcode-hits=%d tcode-decodes=%d"
      s.jit_launches s.mem_hits s.disk_hits s.compiles (s.jit_overhead_s *. 1e3)
      (s.real_compile_s *. 1e3) s.tcode_hits s.tcode_decodes
  in
  if failures_total s = 0 && s.fallbacks = 0 && s.cache_corruptions = 0
     && s.host_hook_errors = 0 && s.quarantined_launches = 0
     && s.verify_rejections = 0
  then base
  else
    Printf.sprintf
      "%s fallbacks=%d failures=[%s] quarantine-events=%d quarantined-launches=%d \
       quarantine-retries=%d cache-corruptions=%d host-hook-errors=%d \
       verify-rejections=%d"
      base s.fallbacks
      (String.concat ","
         (List.map (fun (st, n) -> Printf.sprintf "%s:%d" st n) (stage_failures s)))
      s.quarantine_events s.quarantined_launches s.quarantine_retries s.cache_corruptions
      s.host_hook_errors s.verify_rejections
