(* Differential tests for the three executor engines. The reference
   interpreter is the executable specification; the threaded-code
   engine (production path) and the multicore block scheduler must
   match it bit for bit: memory contents, every performance counter,
   and the simulated kernel timing derived from them. Kernels with
   atomics must demonstrably take the serial fallback. *)

open Proteus_ir
open Proteus_frontend
open Proteus_backend
open Proteus_gpu
open Proteus_runtime
open Proteus_hecbench

let check = Alcotest.check
let qtest = Qseed.qtest

let compile_kernel ?(vendor = Device.Amd) src sym =
  let fe_vendor =
    match vendor with Device.Amd -> Lower.Hip | Device.Nvidia -> Lower.Cuda
  in
  let m = (Compile.compile ~vendor:fe_vendor src).Compile.device in
  ignore (Proteus_opt.Pipeline.optimize_o3 m);
  let obj =
    match vendor with
    | Device.Amd -> Gcn.compile m
    | Device.Nvidia -> Ptxas.compile ~globals:m.Ir.globals (Ptx.emit m)
  in
  Mach.find_kernel obj sym

type engine_mode = Reference | Threaded | Multicore

let mode_name = function
  | Reference -> "reference"
  | Threaded -> "threaded"
  | Multicore -> "multicore"

(* Run [k] under one engine on a fresh device; return the raw bytes of
   the observable buffer, the counters, the simulated duration and the
   engine the launch actually used. *)
let run_mode mode k ~grid ~block ~buf_bytes ~init ~args =
  let dev = Device.mi250x in
  let mem = Gmem.create () and l2 = L2cache.create dev in
  let buf = Gmem.alloc mem buf_bytes in
  init mem buf;
  let reference = mode = Reference in
  let domains = match mode with Multicore -> 4 | _ -> 1 in
  let r =
    Exec.launch ~reference ~domains ~device:dev ~mem ~l2
      ~symbols:(fun _ -> 0L) k ~grid ~block ~args:(args buf)
  in
  let snap =
    String.init buf_bytes (fun i ->
        Char.chr (Gmem.read_u8 mem (Int64.add buf (Int64.of_int i))))
  in
  let dur =
    (Timing.kernel_time dev k r.Exec.counters ~blocks:r.Exec.blocks_launched)
      .Timing.duration_s
  in
  (snap, r.Exec.counters, dur, r.Exec.engine)

(* Divergent control flow, f64 and f32 arithmetic, transcendentals and
   integer bit-twiddling - enough surface to shake out any engine
   disagreement. *)
let diff_kernel_src =
  {|__global__ void f(double* out, float* tmp, double a, int n) {
      int i = blockIdx.x * blockDim.x + threadIdx.x;
      if (i < n) {
        double x = a * (double)i;
        float s = (float)x;
        for (int j = 0; j < 5; j++) {
          if (((i >> j) & 1) == 1) { x = x + sqrt(fabs(x) + 1.0); s = s * 1.5f; }
          else { x = x * 0.5 + (double)(j * i); }
        }
        tmp[i] = s;
        out[i] = x + (double)s;
      }
    }|}

let qcheck_engines_bit_identical =
  let k = compile_kernel diff_kernel_src "f" in
  QCheck.Test.make ~name:"reference = threaded = multicore on random launches"
    ~count:20
    QCheck.(pair (float_range (-8.0) 8.0) (int_range 65 300))
    (fun (a, n) ->
      let grid = (n + 63) / 64 in
      let buf_bytes = (n * 8) + (n * 4) in
      let run mode =
        run_mode mode k ~grid ~block:64 ~buf_bytes
          ~init:(fun _ _ -> ())
          ~args:(fun buf ->
            [|
              Konst.kint ~bits:64 buf;
              Konst.kint ~bits:64 (Int64.add buf (Int64.of_int (n * 8)));
              Konst.kf64 a;
              Konst.ki32 n;
            |])
      in
      let s1, c1, d1, e1 = run Reference in
      let s2, c2, d2, e2 = run Threaded in
      let s3, c3, d3, e3 = run Multicore in
      e1 = "reference" && e2 = "threaded" && e3 = "multicore" && s1 = s2
      && s2 = s3 && c1 = c2 && c2 = c3 && d1 = d2 && d2 = d3)

let test_atomics_take_serial_fallback () =
  let k =
    compile_kernel
      {|__global__ void count(float* acc, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) { atomicAdd(acc, 1.0f); }
        }|}
      "count"
  in
  (* 4 domains requested, grid of 4 blocks: parallelizable in shape,
     but the atomic forces the serial threaded engine *)
  let snap, _, _, engine =
    run_mode Multicore k ~grid:4 ~block:64 ~buf_bytes:8
      ~init:(fun mem buf -> Gmem.write_f32 mem buf 0.0)
      ~args:(fun buf -> [| Konst.kint ~bits:64 buf; Konst.ki32 200 |])
  in
  check Alcotest.string "atomics stay serial" "threaded" engine;
  (* and the result is still right *)
  let bits =
    Int32.logor
      (Int32.of_int (Char.code snap.[0]))
      (Int32.logor
         (Int32.shift_left (Int32.of_int (Char.code snap.[1])) 8)
         (Int32.logor
            (Int32.shift_left (Int32.of_int (Char.code snap.[2])) 16)
            (Int32.shift_left (Int32.of_int (Char.code snap.[3])) 24)))
  in
  check (Alcotest.float 0.0) "atomic sum" 200.0 (Int32.float_of_bits bits)

let test_parallel_safe_goes_multicore () =
  let k = compile_kernel diff_kernel_src "f" in
  let n = 256 in
  let _, _, _, engine =
    run_mode Multicore k ~grid:4 ~block:64 ~buf_bytes:((n * 8) + (n * 4))
      ~init:(fun _ _ -> ())
      ~args:(fun buf ->
        [|
          Konst.kint ~bits:64 buf;
          Konst.kint ~bits:64 (Int64.add buf (Int64.of_int (n * 8)));
          Konst.kf64 1.5;
          Konst.ki32 n;
        |])
  in
  check Alcotest.string "atomic-free kernel parallelizes" "multicore" engine

(* ---- whole-application differential: the full HeCBench suite ---- *)

(* Run an app end to end (AOT-compiled, so only the executor varies)
   under one engine and return everything observable: program output,
   simulated wall clock, and the per-launch profiles (counters +
   timing report per kernel launch, most recent first). *)
let run_app_mode (a : App.t) mode =
  let exe = Harness.compile_app a Device.Amd Proteus_driver.Driver.Aot in
  let rt = Gpurt.create (Device.by_vendor Device.Amd) in
  (match mode with
  | Reference -> rt.Gpurt.exec_reference <- true
  | Threaded -> rt.Gpurt.exec_domains <- 1
  | Multicore -> rt.Gpurt.exec_domains <- 8);
  let _lm = Gpurt.load_module rt exe.Proteus_driver.Driver.fatbin in
  let res = Hostexec.run rt exe.Proteus_driver.Driver.host in
  (res.Hostexec.output, res.Hostexec.end_to_end_s, rt.Gpurt.profiles)

let app_differential (a : App.t) () =
  let out_r, t_r, prof_r = run_app_mode a Reference in
  let out_t, t_t, prof_t = run_app_mode a Threaded in
  let out_m, t_m, prof_m = run_app_mode a Multicore in
  check Alcotest.string "threaded output" out_r out_t;
  check Alcotest.string "multicore output" out_r out_m;
  check (Alcotest.float 0.0) "threaded sim time" t_r t_t;
  check (Alcotest.float 0.0) "multicore sim time" t_r t_m;
  check Alcotest.int "launch count" (List.length prof_r) (List.length prof_t);
  (* every launch: identical counters and identical simulated report *)
  Alcotest.(check bool) "threaded profiles bit-identical" true (prof_r = prof_t);
  Alcotest.(check bool) "multicore profiles bit-identical" true (prof_r = prof_m)

let () =
  Alcotest.run "exec-differential"
    [
      ( "engines",
        [
          qtest qcheck_engines_bit_identical;
          Alcotest.test_case "atomics take the serial fallback" `Quick
            test_atomics_take_serial_fallback;
          Alcotest.test_case "atomic-free kernels parallelize" `Quick
            test_parallel_safe_goes_multicore;
        ] );
      ( "hecbench",
        List.map
          (fun (a : App.t) ->
            Alcotest.test_case
              (Printf.sprintf "%s: 3 engines agree" a.App.name)
              `Quick (app_differential a))
          Suite.apps );
    ]

(* silence unused-warning if a mode is never named in a failure path *)
let _ = mode_name
