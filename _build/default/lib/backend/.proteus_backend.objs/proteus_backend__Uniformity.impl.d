lib/backend/uniformity.ml: Array Ir List Proteus_ir Proteus_support Util
