(* Diagnostics produced by the KernelSan analyses. A finding carries a
   machine-usable kind, a severity, and (when the module was lowered
   with dbg.loc markers) a source location. Severity semantics:
   [Error] findings are definite violations (the JIT verify gate
   rejects on them), [Warning] findings are probable violations worth
   surfacing by default, [Info] findings are conservative "maybe"
   verdicts that only show up under --all. *)

type severity = Info | Warning | Error

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Info -> 0 | Warning -> 1 | Error -> 2

type kind =
  | Barrier_divergence
  | Shared_race
  | Out_of_bounds
  | Invalid_ir
  | Spec_impact (* Specadvisor provenance: why an argument scored *)

let kind_to_string = function
  | Barrier_divergence -> "barrier-divergence"
  | Shared_race -> "shared-race"
  | Out_of_bounds -> "out-of-bounds"
  | Invalid_ir -> "invalid-ir"
  | Spec_impact -> "spec-impact"

type t = {
  kind : kind;
  severity : severity;
  func : string; (* kernel the finding is in *)
  block : string; (* IR block, for provenance without debug info *)
  loc : (int * int) option; (* source line, column *)
  message : string;
}

let mk ?loc ~kind ~severity ~func ~block message =
  { kind; severity; func; block; loc; message }

(* Most severe first, then by source position for stable output. *)
let compare a b =
  match Stdlib.compare (severity_rank b.severity) (severity_rank a.severity) with
  | 0 -> Stdlib.compare (a.loc, a.func, a.message) (b.loc, b.func, b.message)
  | c -> c

let to_string ?(file = "<source>") t =
  let pos =
    match t.loc with
    | Some (l, c) -> Printf.sprintf "%s:%d:%d" file l c
    | None -> Printf.sprintf "%s:%s" file t.block
  in
  Printf.sprintf "%s: %s: [%s] %s (kernel %s)" pos
    (severity_to_string t.severity)
    (kind_to_string t.kind) t.message t.func

(* Stable tab-separated form for automation:
   file<TAB>line<TAB>col<TAB>severity<TAB>kind<TAB>kernel<TAB>message *)
let to_machine ?(file = "<source>") t =
  let line, col = match t.loc with Some (l, c) -> (l, c) | None -> (0, 0) in
  Printf.sprintf "%s\t%d\t%d\t%s\t%s\t%s\t%s" file line col
    (severity_to_string t.severity)
    (kind_to_string t.kind) t.func t.message
