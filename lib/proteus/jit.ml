(* The Proteus JIT compilation runtime library (Sec. 3.3). Installed
   into a host program's extern table, it services __jit_launch_kernel:
   hash the specialization, consult the two-level cache, and on a miss
   retrieve the kernel's embedded bitcode (from the .jit.<sym> section
   on AMD; from device memory on NVIDIA), link device globals,
   specialize (RCF + LB), run the O3 pipeline, generate machine code
   through the vendor backend, cache it, and launch.

   Fault containment: JIT specialization is an optimization layered on
   a working AOT binary, so the program must never be worse off for
   enabling it. Every pipeline stage runs inside a containment
   boundary (see [in_stage]); on any exception the launch falls back
   to the AOT kernel already loaded in Gpurt, the failure is recorded
   per stage in Stats, and after [Config.quarantine_threshold]
   consecutive failures the (mid, sym) kernel is quarantined: later
   launches skip JIT entirely until a backoff of
   [Config.quarantine_backoff] launches expires (doubling after each
   failed retry), serving-stack style. *)

open Proteus_support
open Proteus_ir
open Proteus_backend
open Proteus_gpu
open Proteus_runtime

(* Per-(mid, sym) quarantine record. [cooldown] > 0 means quarantined:
   that many launches go straight to AOT before one JIT retry. *)
type qstate = {
  mutable consec_failures : int;
  mutable cooldown : int;
  mutable cur_backoff : int; (* backoff applied on the next quarantine *)
}

(* One enqueued background (tier-up) compile. The job is created on
   the launching domain when a specialization key crosses the
   PROTEUS_TIER_THRESHOLD gate, submitted to the domain pool's async
   queue, and runs at the next launch boundary's drain. Its result
   travels back through [tj_ticket]; everything that mutates shared
   state (cache swap, tcode invalidation, stats, quarantine) happens
   at publication on the launching domain, never inside the job. *)
type tier_job = {
  tj_key : Speckey.t;
  tj_mid : string;
  tj_sym : string;
  tj_spec_values : (int * Konst.t) list;
  tj_block : int;
  tj_enqueued_s : float; (* simulated clock at enqueue, for swap latency *)
  tj_sim : float ref; (* simulated seconds the background compile charged *)
  tj_ticket : (Mach.obj, exn) result option Atomic.t;
}

type t = {
  rt : Gpurt.ctx;
  vendor : Device.vendor;
  config : Config.t;
  tenant : string option;
      (* multi-tenant service: the client session this JIT serves.
         Scopes quarantine keys and cache-entry ownership so one
         tenant's poisoned kernel or quota pressure can never spill
         into another's service level. None = single-tenant process. *)
  cache : Cachestore.t;
  stats : Stats.t;
  faults : Fault.t;
  flight : Cachestore.entry Flight.t;
      (* single-flight compile groups keyed by specialization key:
         concurrent identical launches coalesce onto one compile *)
  rng : Util.Rng.t; (* deterministic jitter for retry backoff *)
  mutable degrade_level : int;
      (* resource-pressure degradation ladder: 0 full service,
         1 no decoded-code tier, 2 shrunk memory cache, 3 AOT-only *)
  quarantine : (string, qstate) Hashtbl.t;
  registered_vars : (string, unit) Hashtbl.t;
  advice : (string, Proteus_analysis.Specadvisor.kernel_impact option) Hashtbl.t;
      (* (mid/sym) -> memoized SpecAdvisor impact report; filled lazily
         on the first launch under the advise policy. The full report
         (not just the statically recommended indices) is kept so the
         adaptive tier policy can re-filter it against measured reuse *)
  pool : Pool.t; (* domain pool carrying the async tier-up queue *)
  pending_tier : (string, tier_job) Hashtbl.t;
      (* spec key -> in-flight background compile; doubles as the
         dedupe set so a hot key is enqueued at most once at a time *)
  mutable charge_sink : (float -> unit) option;
      (* when set, [charge] redirects simulated cost here instead of
         advancing the shared clock: a background compile occupies a
         spare core, so its simulated time must not delay the client's
         launch stream. Only ever set around a drained tier job. *)
}

(* [cache] and [flight] default to private instances (the paper's
   single-process behaviour); the multi-tenant serve loop passes one
   shared store and one shared flight table so N tenants dedup
   compiles against each other. A shared cache keeps its own fault set
   (from its creator) — per-tenant injected faults fire only in this
   JIT's pipeline stages, never inside the shared store. *)
let create ?(config = Config.default) ?cache ?flight ?tenant (rt : Gpurt.ctx)
    (vendor : Device.vendor) : t =
  rt.Gpurt.exec_domains <- config.Config.exec_domains;
  let faults = Fault.of_env ~base:config.Config.fault_plan () in
  {
    rt;
    vendor;
    config;
    tenant;
    cache =
      (match cache with
      | Some c -> c
      | None ->
          Cachestore.create ?persistent_dir:config.Config.persistent_dir ~faults
            ~tenant_quota:config.Config.tenant_quota
            ~lock_timeout_ms:config.Config.lock_timeout_ms ());
    stats = Stats.create ();
    faults;
    flight = (match flight with Some f -> f | None -> Flight.create ());
    rng = Util.Rng.create 0x5EED;
    degrade_level = 0;
    quarantine = Hashtbl.create 8;
    registered_vars = Hashtbl.create 8;
    advice = Hashtbl.create 8;
    pool = Pool.get ();
    pending_tier = Hashtbl.create 8;
    charge_sink = None;
  }

let charge t s =
  match t.charge_sink with
  | Some sink -> sink s
  | None -> Clock.advance t.rt.Gpurt.clock s

(* ---- containment boundary ---------------------------------------- *)

(* A JIT failure tagged with the pipeline stage it escaped from. *)
exception Stage_failure of Fault.point * exn

(* Run one pipeline stage: fire the fault-injection points, run the
   stage under its wall-clock deadline (PROTEUS_STAGE_DEADLINE_MS;
   cooperative and post-hoc - see Deadline), record its real latency
   into the per-stage histogram, and tag any escaping exception with
   the stage so the launch-level handler can account it.
   Already-tagged exceptions pass through untouched (an outer stage
   must not re-attribute an inner stage's failure). *)
let in_stage t (p : Fault.point) (f : unit -> 'a) : 'a =
  (try
     Fault.hit t.faults p;
     (* the simulated deadline overrun: stage-timeout models a stage
        that blew its budget, without doing any actual slow work *)
     if Fault.fires t.faults Fault.Stage_timeout then begin
       t.stats.Stats.deadline_overruns <- t.stats.Stats.deadline_overruns + 1;
       raise
         (Deadline.Exceeded
            {
              Deadline.label = Fault.point_name p;
              elapsed_ms = infinity;
              limit_ms = t.config.Config.stage_deadline_ms;
            })
     end
   with e -> raise (Stage_failure (p, e)));
  let t0 = Unix.gettimeofday () in
  let record () =
    Stats.record_stage_latency t.stats (Fault.point_name p)
      (Unix.gettimeofday () -. t0)
  in
  match
    Deadline.run ~label:(Fault.point_name p)
      ~limit_ms:t.config.Config.stage_deadline_ms f
  with
  | r ->
      record ();
      r
  | exception (Stage_failure _ as e) ->
      record ();
      raise e
  | exception e ->
      record ();
      (match e with
      | Deadline.Exceeded _ ->
          t.stats.Stats.deadline_overruns <- t.stats.Stats.deadline_overruns + 1
      | _ -> ());
      raise (Stage_failure (p, e))

(* ---- JIT pipeline stages ----------------------------------------- *)

(* Retrieve the extracted bitcode for [sym]. AMD: read the .jit.<sym>
   section of the loaded module (host-side, cheap). NVIDIA: the bytes
   live in a device global; read them back over the interconnect. *)
let fetch_bitcode (t : t) (sym : string) : string =
  in_stage t Fault.Fetch_bitcode @@ fun () ->
  match t.vendor with
  | Device.Amd -> (
      let rec find = function
        | [] -> Util.failf "Proteus: no .jit section for kernel %s" sym
        | (lm : Gpurt.loaded_module) :: rest -> (
            match List.assoc_opt (Plugin.jit_section sym) lm.Gpurt.lobj.Mach.sections with
            | Some bc -> bc
            | None -> find rest)
      in
      let bc = find t.rt.Gpurt.modules in
      charge t 10.0e-6 (* section lookup *);
      bc)
  | Device.Nvidia -> (
      let gname = Plugin.jit_bc_global sym in
      match Gpurt.get_symbol_address t.rt gname with
      | Some addr ->
          (* find the length from the module's global table *)
          let rec len_of = function
            | [] -> Util.failf "Proteus: missing device global %s" gname
            | (lm : Gpurt.loaded_module) :: rest -> (
                match
                  List.find_opt
                    (fun (g : Ir.gvar) -> g.Ir.gname = gname)
                    lm.Gpurt.lobj.Mach.oglobals
                with
                | Some g -> Types.size_of g.Ir.gty
                | None -> len_of rest)
          in
          let len = len_of t.rt.Gpurt.modules in
          (* cuModuleGetGlobal + device-to-host read *)
          Gpurt.read_device_bytes t.rt addr len
      | None -> Util.failf "Proteus: device global %s not found (was the plugin run?)" gname)

let resolve_global (t : t) (name : string) : int64 =
  (* cudaGetSymbolAddress / hipGetSymbolAddress *)
  match Gpurt.get_symbol_address t.rt name with
  | Some a -> a
  | None -> Util.failf "Proteus: cannot resolve device global %s" name

(* Deterministically corrupt the specialized kernel IR in place: the
   payload of [Fault.Specialize_corrupt]. Drops a phi incoming edge
   when one exists, else inserts a use of an undefined register — both
   are exactly the structural breakages the hardened verifier detects. *)
let corrupt_ir (m : Ir.modul) ~(sym : string) : unit =
  Ir.touch_module m;
  match Ir.find_func_opt m sym with
  | None -> ()
  | Some f -> (
      let dropped = ref false in
      List.iter
        (fun (b : Ir.block) ->
          if not !dropped then
            b.Ir.insts <-
              List.map
                (fun i ->
                  match i with
                  | Ir.IPhi (d, (_ :: _ :: _ as inc)) when not !dropped ->
                      dropped := true;
                      Ir.IPhi (d, List.tl inc)
                  | i -> i)
                b.Ir.insts)
        f.Ir.blocks;
      if not !dropped then
        match f.Ir.blocks with
        | entry :: _ ->
            let undef = Ir.fresh_reg f (Types.TInt 32) in
            let dst = Ir.fresh_reg f (Types.TInt 32) in
            entry.Ir.insts <-
              entry.Ir.insts
              @ [ Ir.IBin (dst, Ops.Add, Ir.Reg undef, Ir.Imm (Konst.ki32 0)) ]
        | [] -> ())

(* The PROTEUS_VERIFY gate: structural IR verification plus KernelSan
   error-level findings on the kernel being compiled. Any violation
   raises inside [in_stage t Fault.Verify], so the launch-level handler
   turns it into a contained AOT fallback and counts it in
   [Stats.verify_rejections]. *)
let verify_ir (t : t) (m : Ir.modul) ~(sym : string) : unit =
  in_stage t Fault.Verify @@ fun () ->
  Verify.verify_module m;
  let findings = Proteus_analysis.Kernelsan.analyze_kernel m sym in
  (match Proteus_analysis.Kernelsan.errors findings with
  | [] -> ()
  | fd :: _ ->
      Util.failf "Proteus: KernelSan rejected %s: %s" sym
        (Proteus_analysis.Finding.to_string fd));
  (* one extra IR traversal, priced like an optimizer sweep *)
  let n = ref 0 in
  List.iter
    (fun (f : Ir.func) -> Ir.iter_instrs f (fun _ -> incr n))
    m.Ir.funcs;
  charge t (float_of_int !n *. t.rt.Gpurt.cost.Costmodel.opt_per_work_s)

(* The PROTEUS_VERIFY=2 gate: TransVal translation validation of one
   transformation step. Runs inside the contained [Fault.Verify] stage,
   so a refuted verdict degrades to a counted AOT fallback (and feeds
   quarantine pressure) exactly like a structural-verifier rejection.
   Unproven is counted but only fatal under PROTEUS_VERIFY_STRICT. *)
let transval_gate (t : t) ~(phase : string)
    ?(subst = Proteus_analysis.Transval.no_subst) ~(reference : Ir.modul)
    ~(candidate : Ir.modul) ~(sym : string) () : unit =
  in_stage t Fault.Verify @@ fun () ->
  let t0 = Unix.gettimeofday () in
  let verdict =
    Proteus_analysis.Transval.check_kernel ~subst ~reference ~candidate sym
  in
  Proteus_support.Hist.record t.stats.Stats.tv_hist (Unix.gettimeofday () -. t0);
  match verdict with
  | Proteus_analysis.Transval.Proven ->
      t.stats.Stats.tv_proven <- t.stats.Stats.tv_proven + 1
  | Proteus_analysis.Transval.Unproven why ->
      t.stats.Stats.tv_unproven <- t.stats.Stats.tv_unproven + 1;
      if t.config.Config.verify_strict then
        Util.failf "Proteus: TransVal could not prove %s %s: %s" sym phase why
  | Proteus_analysis.Transval.Refuted fd ->
      t.stats.Stats.tv_refuted <- t.stats.Stats.tv_refuted + 1;
      Util.failf "Proteus: TransVal refuted %s %s: %s" sym phase
        (Proteus_analysis.Finding.to_string fd)

(* Compile one kernel specialization to a loadable object. *)
let compile_specialization (t : t) ~(bitcode : string) ~(sym : string)
    ~(spec_values : (int * Konst.t) list) ~(block : int) : Mach.obj =
  let cost = t.rt.Gpurt.cost in
  let t0 = Unix.gettimeofday () in
  (* parse bitcode *)
  let m =
    in_stage t Fault.Decode @@ fun () ->
    charge t (float_of_int (String.length bitcode) *. cost.Costmodel.bitcode_parse_per_byte_s);
    t.stats.Stats.bitcode_bytes <- t.stats.Stats.bitcode_bytes + String.length bitcode;
    Bitcode.decode_module bitcode
  in
  let vlevel = Config.effective_verify_level t.config in
  (* translation validation needs the decoded module as it was before
     specialization mutates it in place *)
  let m_decoded = if vlevel >= 2 then Some (Ir.clone_module m) else None in
  (* link + specialize *)
  in_stage t Fault.Specialize (fun () ->
      Specialize.apply t.config m ~kernel:sym ~spec_values ~block
        ~resolve_global:(resolve_global t));
  (* silent-corruption fault: damages the IR without raising, so only
     the verify gate stands between it and codegen *)
  if Fault.fires t.faults Fault.Specialize_corrupt then corrupt_ir m ~sym;
  (* translation validation runs before the structural verifier: a
     refutation then carries source provenance (the decoded reference
     still has its dbg.loc markers) instead of a bare verifier error *)
  (match m_decoded with
  | Some reference ->
      (* the decoded reference sees the same substitution the
         specializer performed: folded argument values (1-based in
         [spec_values], 0-based in the symbolic summary) and resolved
         device-global addresses *)
      let subst =
        {
          Proteus_analysis.Transval.sub_params =
            (if t.config.Config.enable_rcf then
               List.map (fun (i, k) -> (i - 1, k)) spec_values
             else []);
          sub_globals =
            List.filter_map
              (fun (g : Ir.gvar) ->
                if g.Ir.gextern then Some (g.Ir.gname, resolve_global t g.Ir.gname)
                else None)
              reference.Ir.globals;
        }
      in
      transval_gate t ~phase:"after specialize" ~subst ~reference ~candidate:m
        ~sym ()
  | None -> ());
  if t.config.Config.verify_jit then verify_ir t m ~sym;
  let m_spec = if vlevel >= 2 then Some (Ir.clone_module m) else None in
  (* O3 pipeline *)
  in_stage t Fault.Optimize (fun () ->
      let pstats = Proteus_opt.Pipeline.optimize_o3 m in
      t.stats.Stats.compile_work <- t.stats.Stats.compile_work + pstats.Proteus_opt.Pass.work;
      charge t (float_of_int pstats.Proteus_opt.Pass.work *. cost.Costmodel.opt_per_work_s));
  (match m_spec with
  | Some reference ->
      transval_gate t ~phase:"after O3" ~reference ~candidate:m ~sym ()
  | None -> ());
  if t.config.Config.verify_jit then verify_ir t m ~sym;
  (* backend code generation *)
  let obj =
    in_stage t Fault.Codegen @@ fun () ->
    match t.vendor with
    | Device.Amd ->
        let f = Ir.find_func m sym in
        let mf = Gcn.lower_kernel m f in
        charge t
          (float_of_int (Mach.instr_count mf)
          *. (cost.Costmodel.isel_per_instr_s +. cost.Costmodel.regalloc_per_instr_s));
        { Mach.okind = Mach.VGcn; kernels = [ mf ]; oglobals = []; sections = [] }
    | Device.Nvidia ->
        (* NVPTX emits PTX text; the PTX compiler produces the binary *)
        let ptx = Ptx.emit m in
        charge t (float_of_int (String.length ptx) *. cost.Costmodel.ptx_emit_per_byte_s);
        let obj = Ptxas.compile ~globals:[] ptx in
        charge t (float_of_int (String.length ptx) *. cost.Costmodel.ptxas_per_byte_s);
        let n =
          List.fold_left (fun acc k -> acc + Mach.instr_count k) 0 obj.Mach.kernels
        in
        charge t (float_of_int n *. cost.Costmodel.regalloc_per_instr_s);
        obj
  in
  t.stats.Stats.compiles <- t.stats.Stats.compiles + 1;
  t.stats.Stats.real_compile_s <-
    t.stats.Stats.real_compile_s +. (Unix.gettimeofday () -. t0);
  obj

(* ---- quarantine policy ------------------------------------------- *)

(* Quarantine (and advice/profile) keys are tenant-scoped: with a
   shared content-addressed store two tenants can hit the same
   (mid, sym), but quarantine is a judgement about a *client's* launch
   stream, not about the artifact — tenant A poisoning its copy of a
   kernel must not put tenant B's identical kernel on the AOT path. *)
let qkey t ~mid ~sym =
  (match t.tenant with Some tn -> tn ^ ":" | None -> "") ^ mid ^ "/" ^ sym

let qstate t ~mid ~sym : qstate =
  let k = qkey t ~mid ~sym in
  match Hashtbl.find_opt t.quarantine k with
  | Some q -> q
  | None ->
      let q =
        {
          consec_failures = 0;
          cooldown = 0;
          cur_backoff = max t.config.Config.quarantine_backoff 0;
        }
      in
      Hashtbl.replace t.quarantine k q;
      q

let quarantined_kernels t =
  Hashtbl.fold (fun k q acc -> if q.cooldown > 0 then k :: acc else acc) t.quarantine []
  |> List.sort compare

(* A failure was contained for (mid, sym): count it and, past the
   threshold, quarantine the kernel. Each time a post-backoff retry
   fails again the backoff doubles. *)
let note_failure t (q : qstate) =
  q.consec_failures <- q.consec_failures + 1;
  let threshold = t.config.Config.quarantine_threshold in
  if threshold > 0 && q.consec_failures >= threshold then begin
    t.stats.Stats.quarantine_events <- t.stats.Stats.quarantine_events + 1;
    if t.config.Config.quarantine_backoff = 0 then q.cooldown <- max_int
    else begin
      q.cooldown <- q.cur_backoff;
      (* exponential backoff for the next round, capped to stay sane *)
      q.cur_backoff <- min (q.cur_backoff * 2) (1 lsl 20);
      (* the retry after this cooldown gets one shot: a single failure
         re-quarantines immediately *)
      q.consec_failures <- threshold - 1
    end
  end

let note_success t ~mid ~sym = Hashtbl.remove t.quarantine (qkey t ~mid ~sym)

(* ---- specialization policy (SpecAdvisor) ------------------------- *)

(* SpecAdvisor impact report for (mid, sym), computed once per kernel
   from its extracted bitcode and memoized for the life of the JIT.
   Runs inside the same Fetch_bitcode/Decode containment stages as
   compilation, so advisor failures are contained, counted and
   quarantined exactly like compile failures. *)
let advised_impact (t : t) ~(mid : string) ~(sym : string) :
    Proteus_analysis.Specadvisor.kernel_impact option =
  let k = qkey t ~mid ~sym in
  match Hashtbl.find_opt t.advice k with
  | Some r -> r
  | None ->
      let t0 = Unix.gettimeofday () in
      let bitcode = fetch_bitcode t sym in
      let m = in_stage t Fault.Decode (fun () -> Bitcode.decode_module bitcode) in
      let impact =
        Proteus_analysis.Specadvisor.advise_kernel
          ~threshold:t.config.Config.spec_threshold m sym
      in
      t.stats.Stats.advise_time_s <-
        t.stats.Stats.advise_time_s +. (Unix.gettimeofday () -. t0);
      (* one advisory IR pass costs about as much as one optimizer
         sweep of the kernel; charge the simulated clock accordingly *)
      charge t
        (float_of_int (String.length bitcode)
        *. t.rt.Gpurt.cost.Costmodel.bitcode_parse_per_byte_s);
      Hashtbl.replace t.advice k impact;
      impact

(* The advisor's static score threshold assumes a nominal reuse of
   [nominal_reuse] launches when it amortizes compile cost. With
   tiering on, the per-kernel launch profile replaces that guess: a
   kernel measured at L launches gets an effective threshold of
   base * nominal / max L nominal, so arguments the static model
   declined become worth specializing once reuse demonstrably exceeds
   break-even. Without tiering (no profile), the static model stands. *)
let nominal_reuse = 10

let effective_spec_threshold (t : t) ~(mid : string) ~(sym : string) : float =
  let base = t.config.Config.spec_threshold in
  if not t.config.Config.tier then base
  else
    let launches = Stats.kernel_launch_count t.stats (qkey t ~mid ~sym) in
    if launches <= nominal_reuse then base
    else base *. float_of_int nominal_reuse /. float_of_int launches

let advised_args (t : t) ~(mid : string) ~(sym : string) : int list =
  match advised_impact t ~mid ~sym with
  | None -> []
  | Some ki ->
      let eff = effective_spec_threshold t ~mid ~sym in
      List.filter_map
        (fun (a : Proteus_analysis.Specadvisor.arg_impact) ->
          if
            a.Proteus_analysis.Specadvisor.index > 0
            && (a.Proteus_analysis.Specadvisor.recommended
               || ((not a.Proteus_analysis.Specadvisor.is_ptr)
                  && a.Proteus_analysis.Specadvisor.score >= eff))
          then Some a.Proteus_analysis.Specadvisor.index
          else None)
        ki.Proteus_analysis.Specadvisor.ranked
      |> List.sort compare

(* Apply the configured specialization policy to the annotated values.
   The filtered list feeds BOTH the cache key and the specializer, so
   a cached object is always exactly the code the key describes. *)
let policy_spec_values (t : t) ~(mid : string) ~(sym : string)
    (spec_values : (int * Konst.t) list) : (int * Konst.t) list =
  if spec_values = [] then spec_values
  else begin
    let policy = t.config.Config.spec_policy in
    let recommended =
      match policy with
      | Config.Spec_advise -> advised_args t ~mid ~sym
      | Config.Spec_all | Config.Spec_none -> []
    in
    let keep, skipped = Speckey.apply_policy ~policy ~recommended spec_values in
    t.stats.Stats.spec_skipped_args <- t.stats.Stats.spec_skipped_args + skipped;
    keep
  end

(* ---- launch ------------------------------------------------------ *)

(* Enqueue a background O3 compile for a hot specialization key, if it
   crossed the PROTEUS_TIER_THRESHOLD launch-count gate and is not
   already pending. The job itself runs at a later launch boundary's
   drain (see [drain_tier]); here we only capture its inputs. *)
let maybe_enqueue_tier (t : t) ~(mid : string) ~(sym : string) ~(key : Speckey.t)
    ~(spec_values : (int * Konst.t) list) ~(block : int) : unit =
  let ks = Speckey.to_string key in
  if
    (not (Hashtbl.mem t.pending_tier ks))
    && Stats.key_launches t.stats ks >= t.config.Config.tier_threshold
  then begin
    let job =
      {
        tj_key = key;
        tj_mid = mid;
        tj_sym = sym;
        tj_spec_values = spec_values;
        tj_block = block;
        tj_enqueued_s = Clock.read t.rt.Gpurt.clock;
        tj_sim = ref 0.0;
        tj_ticket = Atomic.make None;
      }
    in
    Hashtbl.replace t.pending_tier ks job;
    Pool.submit t.pool (fun () ->
        (* Runs on the domain that drains the async queue. Simulated
           cost is redirected into the job's private accumulator: the
           compile occupies a spare core, not the client's timeline.
           Real wall time, work counters and fault points behave
           exactly as in a synchronous compile. *)
        let saved = t.charge_sink in
        t.charge_sink <- Some (fun s -> job.tj_sim := !(job.tj_sim) +. s);
        let res =
          try
            let bitcode = fetch_bitcode t job.tj_sym in
            Ok
              (compile_specialization t ~bitcode ~sym:job.tj_sym
                 ~spec_values:job.tj_spec_values ~block:job.tj_block)
          with e -> Error e
        in
        t.charge_sink <- saved;
        Atomic.set job.tj_ticket (Some res))
  end

(* The JIT path proper: raises Stage_failure on any contained error.
   Returns the tier that served the launch: 1 for a specialized cached
   object, 0 for the AOT artifact a cold tiered launch dispatches while
   its O3 compile waits in the background queue. *)
let jit_launch (t : t) ~(mid : string) ~(sym : string) ~(grid : int) ~(block : int)
    ~(args : Konst.t array) ~(spec_mask : int64) : int =
  let cost = t.rt.Gpurt.cost in
  let clock_before = Clock.read t.rt.Gpurt.clock in
  ignore (Stats.record_kernel_launch t.stats (qkey t ~mid ~sym));
  let spec_values =
    if t.config.Config.enable_rcf || t.config.Config.enable_lb then
      List.filter_map
        (fun i -> if i <= Array.length args then Some (i, args.(i - 1)) else None)
        (Annotate.args_of_mask spec_mask)
    else []
  in
  (* The specialization policy filters the values before they reach
     either the key or the specializer. *)
  let spec_values =
    if t.config.Config.enable_rcf then policy_spec_values t ~mid ~sym spec_values
    else spec_values
  in
  (* Hash always encodes what the generated code depends on. *)
  let key =
    Speckey.compute ~mid ~sym
      ~spec_values:(if t.config.Config.enable_rcf then spec_values else [])
      ~launch_bounds:(if t.config.Config.enable_lb then Some block else None)
  in
  charge t cost.Costmodel.cache_hash_s;
  let key_str = Speckey.to_string key in
  ignore (Stats.record_key_launch t.stats key_str);
  let served =
    match
      in_stage t Fault.Cache_read (fun () ->
          let outcome =
            if t.config.Config.use_mem_cache then Cachestore.lookup ?owner:t.tenant t.cache key
            else Cachestore.Miss
          in
          t.stats.Stats.cache_corruptions <- t.cache.Cachestore.corruptions;
          outcome)
    with
    | Cachestore.Mem_hit e ->
        t.stats.Stats.mem_hits <- t.stats.Stats.mem_hits + 1;
        `Entry e
    | Cachestore.Disk_hit e ->
        t.stats.Stats.disk_hits <- t.stats.Stats.disk_hits + 1;
        charge t
          (cost.Costmodel.cache_disk_lat_s
          +. (float_of_int e.Cachestore.bytes *. cost.Costmodel.cache_disk_per_byte_s));
        charge t
          (float_of_int e.Cachestore.bytes *. cost.Costmodel.module_load_per_byte_s);
        `Entry e
    | Cachestore.Miss when t.config.Config.tier ->
        (* Tiered cold launch: never block on O3. Serve the AOT
           artifact now; once the key is hot enough, queue the
           specialized compile for a later boundary's drain. The
           launch pays only hash + lookup + enqueue bookkeeping. *)
        maybe_enqueue_tier t ~mid ~sym ~key ~spec_values ~block;
        t.stats.Stats.tier_launches <- t.stats.Stats.tier_launches + 1;
        `Tier0
    | Cachestore.Miss ->
        (* Single-flight: concurrent identical launches coalesce onto
           one compile. The winner re-checks the memory tier inside its
           flight (double-checked locking: another flight may have
           finished between our lookup and here), so at most one
           compile runs per key no matter how the misses interleave.
           Flights are keyed on (key, tier): this synchronous O3 path
           must never coalesce onto a tier-0 leader's cheaper artifact. *)
        let outcome =
          Flight.run t.flight ~key:key_str ~tier:1 (fun () ->
              match Cachestore.peek_mem t.cache key with
              | Some e -> e
              | None ->
                  let bitcode = fetch_bitcode t sym in
                  let obj =
                    compile_specialization t ~bitcode ~sym ~spec_values ~block
                  in
                  let e =
                    in_stage t Fault.Cache_write (fun () ->
                        Cachestore.insert ?owner:t.tenant t.cache key obj)
                  in
                  Stats.record_cache_entry t.stats
                    (Config.policy_name t.config.Config.spec_policy);
                  t.stats.Stats.object_bytes <-
                    t.stats.Stats.object_bytes + e.Cachestore.bytes;
                  e)
        in
        let e =
          match outcome with
          | Flight.Led e ->
              t.stats.Stats.flight_leads <- t.stats.Stats.flight_leads + 1;
              e
          | Flight.Coalesced e ->
              (* a duplicate compile suppressed: this launch pays only
                 the module-load cost of the shared artifact *)
              t.stats.Stats.flight_suppressed <-
                t.stats.Stats.flight_suppressed + 1;
              e
        in
        charge t (float_of_int e.Cachestore.bytes *. cost.Costmodel.module_load_per_byte_s);
        `Entry e
  in
  let overhead = Clock.read t.rt.Gpurt.clock -. clock_before in
  t.stats.Stats.jit_overhead_s <- t.stats.Stats.jit_overhead_s +. overhead;
  Hist.record t.stats.Stats.launch_hist overhead;
  Stats.record_launch_overhead t.stats overhead;
  let kernel_t0 = Clock.read t.rt.Gpurt.clock in
  let tier =
    match served with
    | `Tier0 ->
        (* the AOT kernel is always resident (the plugin never strips
           it); dispatch it exactly like the containment fallback *)
        Gpurt.launch_kernel t.rt ~sym ~grid ~block ~args;
        0
    | `Entry entry ->
        let k = Mach.find_kernel entry.Cachestore.obj sym in
        (* decoded-code tier: reuse the threaded program attached to this
           cache entry, or decode once and attach it. Undecodable kernels
           leave nothing attached; the executor runs them on the reference
           interpreter. Ladder step 1 (and below) disables the tier: the
           interpreter path trades speed for decoded-code memory. *)
        let tcode =
          if t.degrade_level >= 1 then None
          else
            match List.assoc_opt sym entry.Cachestore.tcodes with
            | Some p when p.Tcode.tf == k ->
                t.stats.Stats.tcode_hits <- t.stats.Stats.tcode_hits + 1;
                Some p
            | _ -> (
                match Tcode.decode k with
                | p ->
                    t.stats.Stats.tcode_decodes <- t.stats.Stats.tcode_decodes + 1;
                    entry.Cachestore.tcodes <-
                      (sym, p) :: List.remove_assoc sym entry.Cachestore.tcodes;
                    Some p
                | exception Tcode.Decode_error _ -> None)
        in
        Gpurt.launch_mfunc t.rt ?tcode k ~grid ~block ~args;
        entry.Cachestore.tier
  in
  (* per-key kernel-time profile: simulated seconds this key spent
     executing, the observed side of the tier-up payoff model *)
  Stats.record_kernel_time t.stats key_str (Clock.read t.rt.Gpurt.clock -. kernel_t0);
  tier

(* Launch the AOT-compiled kernel embedded in the fatbinary: the
   containment escape hatch. The plugin never removes kernels from the
   AOT device image, so this is always available. *)
let aot_fallback (t : t) ~(sym : string) ~(grid : int) ~(block : int)
    ~(args : Konst.t array) : unit =
  if not (Gpurt.has_kernel t.rt sym) then
    Util.failf "Proteus: no AOT fallback for kernel %s" sym;
  Gpurt.launch_kernel t.rt ~sym ~grid ~block ~args

(* ---- resource-pressure degradation ladder ------------------------ *)

let degrade_level_name = function
  | 0 -> "full"
  | 1 -> "no-tcode"
  | 2 -> "small-mem"
  | _ -> "aot-only"

(* One deliberate step down, never an abort: 1 drops the decoded-code
   tier, 2 shrinks the memory cache, 3 serves AOT only. Each step is
   logged and counted; steps do not reverse within a run (recovering
   capacity is a restart decision, not a flapping one). *)
let step_down t ~(reason : string) : unit =
  if t.degrade_level < 3 then begin
    t.degrade_level <- t.degrade_level + 1;
    t.stats.Stats.degrade_events <- t.stats.Stats.degrade_events + 1;
    t.stats.Stats.degrade_level <- t.degrade_level;
    (match t.degrade_level with
    | 1 -> Cachestore.drop_tcodes t.cache
    | 2 -> Cachestore.shrink_mem t.cache
    | _ -> ());
    Printf.eprintf "proteus: %s: degrading to %s (step %d/3)\n%!" reason
      (degrade_level_name t.degrade_level) t.degrade_level
  end

(* ---- tier-up drain / publication --------------------------------- *)

(* Drain the async queue at a launch boundary and publish every
   completed background compile: swap the specialized object into the
   versioned cache (generation bump), drop the symbol's decoded tcode
   so the next launch decodes the swapped-in code, and account the
   job's privately-accumulated simulated compile time. A failed
   background compile is contained with exact parity to a synchronous
   one — recorded per stage, counted toward quarantine — except that
   no fallback is counted: the launches it would have served already
   ran correctly on the AOT artifact. Nothing raised here may reach
   the client. *)
let drain_tier (t : t) : unit =
  if Hashtbl.length t.pending_tier > 0 then begin
    Pool.drain_async t.pool;
    let completed =
      Hashtbl.fold
        (fun ks job acc ->
          match Atomic.get job.tj_ticket with
          | Some res -> (ks, job, res) :: acc
          | None -> acc)
        t.pending_tier []
      (* deterministic publication order regardless of hash layout *)
      |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    in
    List.iter
      (fun (ks, job, res) ->
        Hashtbl.remove t.pending_tier ks;
        t.stats.Stats.tier_compile_s <-
          t.stats.Stats.tier_compile_s +. !(job.tj_sim);
        match
          match res with
          | Error e -> raise e
          | Ok obj ->
              let e =
                in_stage t Fault.Cache_write (fun () ->
                    Cachestore.swap ~tier:1 ?owner:t.tenant t.cache job.tj_key obj)
              in
              Stats.record_cache_entry t.stats
                (Config.policy_name t.config.Config.spec_policy);
              t.stats.Stats.object_bytes <-
                t.stats.Stats.object_bytes + e.Cachestore.bytes
        with
        | () ->
            Gpurt.invalidate_tcode t.rt job.tj_sym;
            t.stats.Stats.tierups <- t.stats.Stats.tierups + 1;
            Hist.record t.stats.Stats.swap_hist
              (Clock.read t.rt.Gpurt.clock -. job.tj_enqueued_s);
            note_success t ~mid:job.tj_mid ~sym:job.tj_sym
        | exception e ->
            let stage_name =
              match e with
              | Stage_failure (p, _) -> Fault.point_name p
              | _ -> "tierup"
            in
            (match e with
            | Stage_failure (Fault.Verify, _) ->
                t.stats.Stats.verify_rejections <-
                  t.stats.Stats.verify_rejections + 1
            | _ -> ());
            t.stats.Stats.tierup_failures <- t.stats.Stats.tierup_failures + 1;
            Stats.record_failure t.stats stage_name;
            note_failure t (qstate t ~mid:job.tj_mid ~sym:job.tj_sym))
      completed
  end

(* Counters the cache store maintains under its own mutex, mirrored
   into the printable Stats ledger after every launch. *)
let sync_cache_counters t =
  t.stats.Stats.cache_corruptions <- t.cache.Cachestore.corruptions;
  t.stats.Stats.env_rejections <- t.cache.Cachestore.limit_rejections;
  t.stats.Stats.lock_waits <- t.cache.Cachestore.lock_waits;
  t.stats.Stats.lock_contended <- t.cache.Cachestore.lock_contended;
  t.stats.Stats.disk_degrades <- t.cache.Cachestore.disk_degrades

(* The __jit_launch_kernel entry point: JIT under containment, AOT on
   any contained failure, quarantine on repeated failure. Transient
   failures (lock contention, deadline overruns - see
   Fault.classify_exn) retry up to Config.retry_max times with
   jittered exponential backoff before falling back; permanent ones
   fall back and count toward quarantine immediately. *)
let launch (t : t) ~(mid : string) ~(sym : string) ~(grid : int) ~(block : int)
    ~(args : Konst.t array) ~(spec_mask : int64) : unit =
  t.stats.Stats.jit_launches <- t.stats.Stats.jit_launches + 1;
  (* launch boundary: publish any background compiles that completed,
     so this launch's cache lookup can already see the swapped tier *)
  drain_tier t;
  (* pressure poll: at most one ladder step per launch *)
  if Fault.fires t.faults Fault.Mem_pressure then
    step_down t ~reason:"memory pressure";
  (if t.degrade_level >= 3 then begin
     (* ladder bottom: deliberate AOT-only service, not a failure *)
     t.stats.Stats.degraded_launches <- t.stats.Stats.degraded_launches + 1;
     aot_fallback t ~sym ~grid ~block ~args
   end
   else
     let q = qstate t ~mid ~sym in
     if q.cooldown > 0 then begin
       (* quarantined: serve from the AOT binary, tick down the backoff *)
       if q.cooldown <> max_int then q.cooldown <- q.cooldown - 1;
       t.stats.Stats.quarantined_launches <- t.stats.Stats.quarantined_launches + 1;
       if q.cooldown = 0 then
         t.stats.Stats.quarantine_retries <- t.stats.Stats.quarantine_retries + 1;
       aot_fallback t ~sym ~grid ~block ~args
     end
     else
       let rec attempt (n : int) : unit =
         match jit_launch t ~mid ~sym ~grid ~block ~args ~spec_mask with
         | tier ->
             if n > 0 then
               t.stats.Stats.retry_successes <- t.stats.Stats.retry_successes + 1;
             (* a tier-0 serve says nothing about JIT pipeline health:
                it must not clear the consecutive-failure streak a
                failed background compile is building toward quarantine *)
             if tier > 0 then note_success t ~mid ~sym
         | exception e ->
             let transient =
               match e with
               | Stage_failure (_, inner) ->
                   Fault.classify_exn inner = Fault.Transient
               | _ -> false
             in
             if transient && n < t.config.Config.retry_max then begin
               t.stats.Stats.retries <- t.stats.Stats.retries + 1;
               (* jittered exponential backoff, charged to the simulated
                  clock (deterministic: the jitter comes from a seeded
                  Rng, the clock from the cost model) *)
               let delay_ms =
                 Deadline.backoff_ms ~base_ms:t.config.Config.retry_backoff_ms
                   ~attempt:n ~rand:(Util.Rng.float t.rng) ()
               in
               charge t (delay_ms *. 1e-3);
               attempt (n + 1)
             end
             else begin
               let stage_name =
                 match e with
                 | Stage_failure (p, _) -> Fault.point_name p
                 | _ -> "launch" (* escaped outside any instrumented stage *)
               in
               (match e with
               | Stage_failure (Fault.Verify, _) ->
                   t.stats.Stats.verify_rejections <-
                     t.stats.Stats.verify_rejections + 1
               | _ -> ());
               t.stats.Stats.fallbacks <- t.stats.Stats.fallbacks + 1;
               Stats.record_failure t.stats stage_name;
               note_failure t q;
               aot_fallback t ~sym ~grid ~block ~args
             end
       in
       attempt 0);
  sync_cache_counters t

(* --------------------------------------------------------------- *)
(* Host extern bindings: installs __jit_launch_kernel and
   __jit_register_var into a Hostexec run. *)

let host_hook (t : t) (h : Hostexec.host_ctx) (name : string) (args : Konst.t list) :
    Konst.t option option =
  if name = Plugin.entry_point then begin
    (* (mid_str, stub_addr, grid, block, shmem, kernel args..., spec_mask) *)
    match args with
    | mid_ptr :: stub :: grid :: block :: _shmem :: rest when rest <> [] -> (
        let mid = Hostexec.read_cstring h.Hostexec.host_mem (Konst.as_int mid_ptr) in
        let rec split_last = function
          | [ x ] -> ([], x)
          | x :: tl ->
              let init, last = split_last tl in
              (x :: init, last)
          | [] -> assert false
        in
        let kargs, mask = split_last rest in
        let stub_addr = Konst.as_int stub in
        match Gpurt.sym_of_stub t.rt stub_addr with
        | Some sym ->
            launch t ~mid ~sym
              ~grid:(Int64.to_int (Konst.as_int grid))
              ~block:(Int64.to_int (Konst.as_int block))
              ~args:(Array.of_list kargs) ~spec_mask:(Konst.as_int mask);
            Some None
        | None ->
            (* Unregistered stub: nothing to launch, JIT or AOT. A
               clean, counted per-launch error instead of a crash. *)
            t.stats.Stats.host_hook_errors <- t.stats.Stats.host_hook_errors + 1;
            Some None)
    | _ ->
        (* Malformed call shape from a rewritten host binary: count it
           and decline the launch rather than kill the program. *)
        t.stats.Stats.host_hook_errors <- t.stats.Stats.host_hook_errors + 1;
        Some None
  end
  else if name = Plugin.register_var_fn then begin
    (match args with
    | [ p ] ->
        let vname = Hostexec.read_cstring h.Hostexec.host_mem (Konst.as_int p) in
        Hashtbl.replace t.registered_vars vname ()
    | _ -> ());
    Some None
  end
  else None
