lib/gpu/gmem.ml: Bytes Char Int32 Int64 Konst List Proteus_ir Proteus_support Types Util
