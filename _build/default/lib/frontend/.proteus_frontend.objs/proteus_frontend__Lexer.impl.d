lib/frontend/lexer.ml: Array Ast Buffer Int64 List Printf String
