(* HIP/ROCm-flavoured toolchain behaviour: the AMDGPU backend produces
   binary code directly, and custom sections (such as Proteus's
   .jit.<kernel>) survive fatbinary embedding. *)

open Proteus_ir
open Proteus_backend

let device = Proteus_gpu.Device.Amd

let aot_compile_device (m : Ir.modul) : Mach.obj * string =
  let obj = Gcn.compile m in
  (obj, "")

(* Custom sections survive. *)
let embed_fatbin (obj : Mach.obj) : Mach.obj = obj
