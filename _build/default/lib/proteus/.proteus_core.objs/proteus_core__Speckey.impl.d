lib/proteus/speckey.ml: Int64 Konst List Printf Proteus_ir Proteus_support Util
