test/test_hecbench.mli:
