lib/gpu/l2cache.ml: Array Device Int64
