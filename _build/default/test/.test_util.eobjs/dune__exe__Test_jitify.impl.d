test/test_jitify.ml: Alcotest Clock Device Gpurt Int64 Jitify Konst Proteus_gpu Proteus_ir Proteus_jitify Proteus_runtime
