(* GPU simulator tests: device memory, L2 model, SIMT execution
   (including divergence, atomics, grid-stride loops and scratch), and
   a differential check of machine execution against the IR
   interpreter. *)

open Proteus_ir
open Proteus_frontend
open Proteus_backend
open Proteus_gpu

let check = Alcotest.check
let qtest = Qseed.qtest

(* ---- Gmem ---- *)

let test_gmem_rw () =
  let m = Gmem.create () in
  let a = Gmem.alloc m 64 in
  Gmem.write_f64 m a 3.25;
  check (Alcotest.float 0.0) "f64" 3.25 (Gmem.read_f64 m a);
  Gmem.write_i32 m (Int64.add a 8L) 42l;
  check Alcotest.int32 "i32" 42l (Gmem.read_i32 m (Int64.add a 8L));
  Gmem.write_f32 m (Int64.add a 16L) 1.5;
  check (Alcotest.float 0.0) "f32" 1.5 (Gmem.read_f32 m (Int64.add a 16L))

let test_gmem_typed () =
  let m = Gmem.create () in
  let a = Gmem.alloc m 32 in
  Gmem.write m Types.i64 a (Konst.ki64 (-7));
  check Alcotest.int64 "typed i64" (-7L) (Konst.as_int (Gmem.read m Types.i64 a));
  Gmem.write m Types.TBool a (Konst.kbool true);
  Alcotest.(check bool) "typed bool" true (Konst.as_bool (Gmem.read m Types.TBool a))

let test_gmem_alloc_distinct () =
  let m = Gmem.create () in
  let a = Gmem.alloc m 100 and b = Gmem.alloc m 100 in
  Alcotest.(check bool) "non-overlapping" true (Int64.to_int b >= Int64.to_int a + 100)

let test_gmem_free_reuse () =
  let m = Gmem.create () in
  let a = Gmem.alloc m 128 in
  Gmem.free m a;
  let b = Gmem.alloc m 100 in
  check Alcotest.int64 "freed block reused" a b

let test_gmem_null_deref () =
  let m = Gmem.create () in
  Alcotest.(check bool) "null deref raises" true
    (try ignore (Gmem.read_f64 m 0L); false with Failure _ -> true)

(* ---- L2 ---- *)

let test_l2_hit_miss () =
  let l2 = L2cache.create Device.mi250x in
  Alcotest.(check bool) "first touch misses" false (L2cache.access l2 4096L);
  Alcotest.(check bool) "second touch hits" true (L2cache.access l2 4096L);
  Alcotest.(check bool) "same line hits" true (L2cache.access l2 4100L);
  Alcotest.(check bool) "different line misses" false (L2cache.access l2 1000000L);
  check Alcotest.int "counters" 2 l2.L2cache.hits;
  check Alcotest.int "counters" 2 l2.L2cache.misses

let test_l2_lru_eviction () =
  let l2 = L2cache.create Device.mi250x in
  let line = Int64.of_int l2.L2cache.line in
  let set_stride = Int64.mul line (Int64.of_int l2.L2cache.sets) in
  (* fill one set beyond its associativity *)
  for w = 0 to l2.L2cache.ways do
    ignore (L2cache.access l2 (Int64.mul set_stride (Int64.of_int w)))
  done;
  (* address 0 was the least recently used: evicted *)
  Alcotest.(check bool) "LRU victim evicted" false (L2cache.access l2 0L)

let test_l2_reset () =
  let l2 = L2cache.create Device.v100 in
  ignore (L2cache.access l2 128L);
  L2cache.reset l2;
  check Alcotest.int "hits cleared" 0 l2.L2cache.hits;
  Alcotest.(check bool) "cold after reset" false (L2cache.access l2 128L)

(* ---- executor helpers ---- *)

let compile_kernel ?(vendor = Device.Amd) src sym =
  let fe_vendor = match vendor with Device.Amd -> Lower.Hip | Device.Nvidia -> Lower.Cuda in
  let m = (Compile.compile ~vendor:fe_vendor src).Compile.device in
  ignore (Proteus_opt.Pipeline.optimize_o3 m);
  let obj =
    match vendor with
    | Device.Amd -> Gcn.compile m
    | Device.Nvidia -> Ptxas.compile ~globals:m.Ir.globals (Ptx.emit m)
  in
  (m, Mach.find_kernel obj sym)

let fresh_rig vendor =
  let dev = Device.by_vendor vendor in
  (dev, Gmem.create (), L2cache.create dev)

let farray mem addr n = List.init n (fun i -> Gmem.read_f64 mem (Int64.add addr (Int64.of_int (i * 8))))

let test_exec_daxpy_both_vendors () =
  List.iter
    (fun vendor ->
      let _, k =
        compile_kernel ~vendor
          {|__global__ void daxpy(double a, double* x, double* y, int n) {
              int i = blockIdx.x * blockDim.x + threadIdx.x;
              if (i < n) { y[i] = a * x[i] + y[i]; }
            }|}
          "daxpy"
      in
      let dev, mem, l2 = fresh_rig vendor in
      let n = 200 in
      let x = Gmem.alloc mem (n * 8) and y = Gmem.alloc mem (n * 8) in
      for i = 0 to n - 1 do
        Gmem.write_f64 mem (Int64.add x (Int64.of_int (i * 8))) (float_of_int i);
        Gmem.write_f64 mem (Int64.add y (Int64.of_int (i * 8))) 1.0
      done;
      let r =
        Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k
          ~grid:((n + 63) / 64) ~block:64
          ~args:[| Konst.kf64 2.0; Konst.kint ~bits:64 x; Konst.kint ~bits:64 y; Konst.ki32 n |]
      in
      List.iteri
        (fun i v ->
          if v <> (2.0 *. float_of_int i) +. 1.0 then
            Alcotest.failf "lane %d: %g" i v)
        (farray mem y n);
      (* all launched threads count, including the guarded tail *)
      Alcotest.(check bool) "counted threads" true
        (r.Exec.counters.Counters.threads = ((n + 63) / 64) * 64))
    [ Device.Amd; Device.Nvidia ]

let test_exec_divergence () =
  (* lanes take different paths; all results must still be right *)
  let _, k =
    compile_kernel
      {|__global__ void diverge(int* out, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) {
            int v;
            if (i % 3 == 0) { v = i * 10; }
            else if (i % 3 == 1) { v = i + 1000; }
            else { v = -i; }
            out[i] = v;
          }
        }|}
      "diverge"
  in
  let dev, mem, l2 = fresh_rig Device.Amd in
  let n = 100 in
  let out = Gmem.alloc mem (n * 4) in
  ignore
    (Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:2 ~block:64
       ~args:[| Konst.kint ~bits:64 out; Konst.ki32 n |]);
  for i = 0 to n - 1 do
    let got = Int32.to_int (Gmem.read_i32 mem (Int64.add out (Int64.of_int (i * 4)))) in
    let want = if i mod 3 = 0 then i * 10 else if i mod 3 = 1 then i + 1000 else -i in
    if got <> want then Alcotest.failf "lane %d: got %d want %d" i got want
  done

let test_exec_grid_stride_and_loop () =
  let _, k =
    compile_kernel
      {|__global__ void sum_stride(double* v, double* out, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          int stride = gridDim.x * blockDim.x;
          for (int j = i; j < n; j += stride) {
            out[j] = v[j] * 2.0;
          }
        }|}
      "sum_stride"
  in
  let dev, mem, l2 = fresh_rig Device.Amd in
  let n = 1000 in
  let v = Gmem.alloc mem (n * 8) and out = Gmem.alloc mem (n * 8) in
  for i = 0 to n - 1 do
    Gmem.write_f64 mem (Int64.add v (Int64.of_int (i * 8))) (float_of_int i)
  done;
  ignore
    (Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:2 ~block:128
       ~args:[| Konst.kint ~bits:64 v; Konst.kint ~bits:64 out; Konst.ki32 n |]);
  List.iteri
    (fun i x -> if x <> 2.0 *. float_of_int i then Alcotest.failf "%d: %g" i x)
    (farray mem out n)

let test_exec_atomics () =
  let _, k =
    compile_kernel
      {|__global__ void count(float* acc, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) { atomicAdd(acc, 1.0f); }
        }|}
      "count"
  in
  let dev, mem, l2 = fresh_rig Device.Amd in
  let acc = Gmem.alloc mem 8 in
  Gmem.write_f32 mem acc 0.0;
  ignore
    (Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:3 ~block:64
       ~args:[| Konst.kint ~bits:64 acc; Konst.ki32 150 |]);
  check (Alcotest.float 0.0) "atomic count" 150.0 (Gmem.read_f32 mem acc)

let test_exec_scratch_array () =
  let _, k =
    compile_kernel
      {|__global__ void rev(int* out) {
          int t = threadIdx.x;
          int tmp[4];
          for (int j = 0; j < 4; j++) { tmp[j] = t * 10 + j; }
          out[t] = tmp[3 - (t % 4)];
        }|}
      "rev"
  in
  let dev, mem, l2 = fresh_rig Device.Amd in
  let out = Gmem.alloc mem (64 * 4) in
  ignore
    (Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:1 ~block:64
       ~args:[| Konst.kint ~bits:64 out |]);
  for t = 0 to 63 do
    let got = Int32.to_int (Gmem.read_i32 mem (Int64.add out (Int64.of_int (t * 4)))) in
    let want = (t * 10) + (3 - (t mod 4)) in
    if got <> want then Alcotest.failf "thread %d: got %d want %d" t got want
  done

(* ---- differential: machine execution vs IR interpreter ---- *)

let qcheck_machine_matches_interp =
  let src =
    {|__global__ void f(double* out, double a, int n) {
        int i = blockIdx.x * blockDim.x + threadIdx.x;
        if (i < n) {
          double x = a * (double)i;
          double y = x;
          for (int j = 0; j < 4; j++) {
            if (((i + j) & 1) == 0) { y = y + sqrt(fabs(x) + 1.0); }
            else { y = y * 0.5 + (double)j; }
          }
          out[i] = y;
        }
      }|}
  in
  let m, k = compile_kernel src "f" in
  QCheck.Test.make ~name:"machine exec matches IR interpreter" ~count:25
    QCheck.(pair (float_range (-4.0) 4.0) (int_range 1 96))
    (fun (a, n) ->
      (* machine execution *)
      let dev, mem, l2 = fresh_rig Device.Amd in
      let out = Gmem.alloc mem (n * 8) in
      ignore
        (Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k
           ~grid:((n + 63) / 64) ~block:64
           ~args:[| Konst.kint ~bits:64 out; Konst.kf64 a; Konst.ki32 n |]);
      let machine = farray mem out n in
      (* IR interpretation, one virtual thread at a time *)
      let mem2 = Gmem.create () in
      let out2 = Gmem.alloc mem2 (n * 8) in
      for i = 0 to n - 1 do
        let env =
          Interp.make_env
            ~load:(fun ty addr -> Gmem.read mem2 ty addr)
            ~store:(fun ty addr v -> Gmem.write mem2 ty addr v)
            ~extern:(fun nm _ -> Alcotest.failf "extern %s" nm)
            ~global_addr:(fun nm -> Alcotest.failf "global %s" nm)
            ~alloca:(fun ty c -> Gmem.alloc mem2 (Types.size_of ty * c))
            ~gpu_query:(fun q ->
              match q with
              | "gpu.tid.x" -> Some (Konst.ki32 (i mod 64))
              | "gpu.ctaid.x" -> Some (Konst.ki32 (i / 64))
              | "gpu.ntid.x" -> Some (Konst.ki32 64)
              | "gpu.nctaid.x" -> Some (Konst.ki32 ((n + 63) / 64))
              | _ -> None)
            ()
        in
        ignore
          (Interp.run env m "f"
             [ Konst.kint ~bits:64 out2; Konst.kf64 a; Konst.ki32 n ])
      done;
      let interp = farray mem2 out2 n in
      List.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y) machine interp)

(* ---- counters & timing ---- *)

let test_counters_populated () =
  let _, k =
    compile_kernel
      {|__global__ void mix(double* v, int n) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) { v[i] = sqrt(v[i]) + (double)(i * 2); }
        }|}
      "mix"
  in
  let dev, mem, l2 = fresh_rig Device.Amd in
  let v = Gmem.alloc mem (256 * 8) in
  let r =
    Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:4 ~block:64
      ~args:[| Konst.kint ~bits:64 v; Konst.ki32 256 |]
  in
  let c = r.Exec.counters in
  Alcotest.(check bool) "valu counted" true (c.Counters.valu_thread > 0);
  Alcotest.(check bool) "math counted" true (c.Counters.math_warp > 0);
  Alcotest.(check bool) "memory counted" true (c.Counters.vmem_warp > 0);
  check Alcotest.int "warps" 4 c.Counters.warps;
  check Alcotest.int "threads" 256 c.Counters.threads;
  Alcotest.(check bool) "l2 saw traffic" true (c.Counters.l2_hits + c.Counters.l2_misses > 0)

let test_timing_monotone_in_work () =
  let _, k =
    compile_kernel
      {|__global__ void w(double* v, int n, int reps) {
          int i = blockIdx.x * blockDim.x + threadIdx.x;
          if (i < n) {
            double acc = v[i];
            for (int r = 0; r < reps; r++) { acc = acc * 1.000001 + 0.5; }
            v[i] = acc;
          }
        }|}
      "w"
  in
  let time reps =
    let dev, mem, l2 = fresh_rig Device.Amd in
    let v = Gmem.alloc mem (256 * 8) in
    let r =
      Exec.launch ~device:dev ~mem ~l2 ~symbols:(fun _ -> 0L) k ~grid:4 ~block:64
        ~args:[| Konst.kint ~bits:64 v; Konst.ki32 256; Konst.ki32 reps |]
    in
    (Timing.kernel_time dev k r.Exec.counters ~blocks:4).Timing.duration_s
  in
  Alcotest.(check bool) "10x work takes longer" true (time 100 > time 10)

let test_occupancy_depends_on_regs () =
  let mk vregs =
    { Mach.sym = "x"; blocks = []; params = []; arg_tys = []; vregs; sregs = 0;
      frame = 0; spill_slots = 0; launch_bounds = None; max_pressure_v = 0;
      max_pressure_s = 0 }
  in
  let lean = Timing.occupancy Device.mi250x (mk 32) in
  let fat = Timing.occupancy Device.mi250x (mk 256) in
  Alcotest.(check bool)
    (Printf.sprintf "more registers, fewer waves (%d vs %d)" lean fat)
    true (lean > fat)

let () =
  Alcotest.run "gpu"
    [
      ( "gmem",
        [
          Alcotest.test_case "read/write" `Quick test_gmem_rw;
          Alcotest.test_case "typed access" `Quick test_gmem_typed;
          Alcotest.test_case "distinct allocations" `Quick test_gmem_alloc_distinct;
          Alcotest.test_case "free/reuse" `Quick test_gmem_free_reuse;
          Alcotest.test_case "null deref" `Quick test_gmem_null_deref;
        ] );
      ( "l2",
        [
          Alcotest.test_case "hit/miss" `Quick test_l2_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_l2_lru_eviction;
          Alcotest.test_case "reset" `Quick test_l2_reset;
        ] );
      ( "executor",
        [
          Alcotest.test_case "daxpy on both vendors" `Quick test_exec_daxpy_both_vendors;
          Alcotest.test_case "divergent branches" `Quick test_exec_divergence;
          Alcotest.test_case "grid-stride loop" `Quick test_exec_grid_stride_and_loop;
          Alcotest.test_case "atomics" `Quick test_exec_atomics;
          Alcotest.test_case "scratch arrays" `Quick test_exec_scratch_array;
          qtest qcheck_machine_matches_interp;
        ] );
      ( "timing",
        [
          Alcotest.test_case "counters populated" `Quick test_counters_populated;
          Alcotest.test_case "monotone in work" `Quick test_timing_monotone_in_work;
          Alcotest.test_case "occupancy vs registers" `Quick test_occupancy_depends_on_regs;
        ] );
    ]
