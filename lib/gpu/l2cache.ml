(* Set-associative LRU L2 cache model. Only tags are modelled (data
   lives in the memory arena); the cache exists to produce hit ratios
   and miss counts for the timing model and rocprof-style counters. *)

type t = {
  sets : int;
  ways : int;
  line : int;
  tags : int array array; (* set -> way -> tag (-1 empty) *)
  stamp : int array array; (* LRU timestamps *)
  mutable tick : int;
  mutable hits : int;
  mutable misses : int;
}

let create (dev : Device.t) =
  let lines = dev.Device.l2_bytes / dev.Device.l2_line in
  let sets = max 1 (lines / dev.Device.l2_ways) in
  {
    sets;
    ways = dev.Device.l2_ways;
    line = dev.Device.l2_line;
    tags = Array.make_matrix sets dev.Device.l2_ways (-1);
    stamp = Array.make_matrix sets dev.Device.l2_ways 0;
    tick = 0;
    hits = 0;
    misses = 0;
  }

let reset t =
  Array.iter (fun row -> Array.fill row 0 (Array.length row) (-1)) t.tags;
  t.hits <- 0;
  t.misses <- 0

(* Access one cache line by line id; returns true on hit. The
   multicore executor's trace replay uses this entry point directly so
   recorded line ids go through the exact same state transitions as
   addresses do. *)
let access_line t (line_addr : int) : bool =
  t.tick <- t.tick + 1;
  let set = line_addr mod t.sets in
  let tag = line_addr in
  let row = t.tags.(set) and st = t.stamp.(set) in
  let ways = t.ways in
  (* tags are unique within a set (insertion only overwrites), so the
     scan can stop at the first match *)
  let w = ref 0 in
  while !w < ways && Array.unsafe_get row !w <> tag do
    incr w
  done;
  if !w < ways then begin
    Array.unsafe_set st !w t.tick;
    t.hits <- t.hits + 1;
    true
  end
  else begin
    t.misses <- t.misses + 1;
    (* evict LRU *)
    let victim = ref 0 in
    for w = 1 to ways - 1 do
      if Array.unsafe_get st w < Array.unsafe_get st !victim then victim := w
    done;
    row.(!victim) <- tag;
    st.(!victim) <- t.tick;
    false
  end

(* Access one cache line containing [addr]; returns true on hit. *)
let access t (addr : int64) : bool = access_line t (Int64.to_int addr / t.line)

let hit_ratio t =
  let total = t.hits + t.misses in
  if total = 0 then 1.0 else float_of_int t.hits /. float_of_int total
