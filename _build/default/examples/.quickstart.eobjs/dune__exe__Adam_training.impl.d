examples/adam_training.ml: Array Config Device Driver Filename Printf Proteus_core Proteus_driver Proteus_gpu Stats Sys Unix
