(* Hand-written lexer for Kernel-C. Produces a token array with
   positions; the parser indexes into it with arbitrary lookahead. *)

type token =
  | Tint of int64 * bool (* is_long *)
  | Tfloat of float * bool (* is_double *)
  | Tstr of string
  | Tid of string
  | Tkw of string
  | Tpunct of string
  | Teof

let keywords =
  [ "void"; "bool"; "int"; "long"; "float"; "double"; "if"; "else"; "for"; "while";
    "do"; "return"; "break"; "continue"; "const"; "true"; "false"; "extern"; "static";
    "unsigned"; "size_t";
    "__global__"; "__device__"; "__host__"; "__shared__"; "__restrict__";
    "__attribute__"; "__launch_bounds__" ]

type t = { toks : (token * Ast.pos) array }

let is_id_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_digit c = c >= '0' && c <= '9'
let is_id_char c = is_id_start c || is_digit c
let is_hex c = is_digit c || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')

(* Multi-character punctuators, longest first. *)
let puncts =
  [ "<<<"; ">>>"; "<<="; ">>="; "=="; "!="; "<="; ">="; "&&"; "||"; "<<"; ">>";
    "++"; "--"; "+="; "-="; "*="; "/="; "%="; "&="; "|="; "^=";
    "+"; "-"; "*"; "/"; "%"; "="; "<"; ">"; "!"; "&"; "|"; "^"; "~"; "?"; ":";
    ","; ";"; "("; ")"; "{"; "}"; "["; "]"; "." ]

let tokenize (src : string) : t =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 and bol = ref 0 in
  let i = ref 0 in
  let pos () = { Ast.line = !line; col = !i - !bol + 1 } in
  let err fmt = Ast.error (pos ()) fmt in
  let push t p = toks := (t, p) :: !toks in
  while !i < n do
    let c = src.[!i] in
    if c = '\n' then begin
      incr line;
      incr i;
      bol := !i
    end
    else if c = ' ' || c = '\t' || c = '\r' then incr i
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '/' then begin
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    end
    else if c = '/' && !i + 1 < n && src.[!i + 1] = '*' then begin
      i := !i + 2;
      let closed = ref false in
      while (not !closed) && !i < n do
        if src.[!i] = '\n' then begin
          incr line;
          incr i;
          bol := !i
        end
        else if src.[!i] = '*' && !i + 1 < n && src.[!i + 1] = '/' then begin
          i := !i + 2;
          closed := true
        end
        else incr i
      done;
      if not !closed then err "unterminated comment"
    end
    else if is_id_start c then begin
      let p = pos () in
      let start = !i in
      while !i < n && is_id_char src.[!i] do
        incr i
      done;
      let s = String.sub src start (!i - start) in
      push (if List.mem s keywords then Tkw s else Tid s) p
    end
    else if is_digit c || (c = '.' && !i + 1 < n && is_digit src.[!i + 1]) then begin
      let p = pos () in
      let start = !i in
      if c = '0' && !i + 1 < n && (src.[!i + 1] = 'x' || src.[!i + 1] = 'X') then begin
        i := !i + 2;
        while !i < n && is_hex src.[!i] do
          incr i
        done;
        let s = String.sub src start (!i - start) in
        let v = Int64.of_string s in
        let is_long =
          if !i < n && (src.[!i] = 'l' || src.[!i] = 'L') then (incr i; true) else false
        in
        push (Tint (v, is_long)) p
      end
      else begin
        let is_float = ref false in
        while !i < n && is_digit src.[!i] do
          incr i
        done;
        if !i < n && src.[!i] = '.' then begin
          is_float := true;
          incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        if !i < n && (src.[!i] = 'e' || src.[!i] = 'E') then begin
          is_float := true;
          incr i;
          if !i < n && (src.[!i] = '+' || src.[!i] = '-') then incr i;
          while !i < n && is_digit src.[!i] do
            incr i
          done
        end;
        let s = String.sub src start (!i - start) in
        if !is_float then begin
          let is_double =
            if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then (incr i; false) else true
          in
          push (Tfloat (float_of_string s, is_double)) p
        end
        else begin
          if !i < n && (src.[!i] = 'f' || src.[!i] = 'F') then begin
            incr i;
            push (Tfloat (float_of_string s, false)) p
          end
          else
            let is_long =
              if !i < n && (src.[!i] = 'l' || src.[!i] = 'L') then (incr i; true)
              else false
            in
            push (Tint (Int64.of_string s, is_long)) p
        end
      end
    end
    else if c = '"' then begin
      let p = pos () in
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while (not !closed) && !i < n do
        let c = src.[!i] in
        if c = '"' then begin
          incr i;
          closed := true
        end
        else if c = '\\' && !i + 1 < n then begin
          (match src.[!i + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | 't' -> Buffer.add_char buf '\t'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | '0' -> Buffer.add_char buf '\000'
          | c -> Buffer.add_char buf c);
          i := !i + 2
        end
        else begin
          Buffer.add_char buf c;
          incr i
        end
      done;
      if not !closed then err "unterminated string literal";
      push (Tstr (Buffer.contents buf)) p
    end
    else begin
      let p = pos () in
      let matched =
        List.find_opt
          (fun s ->
            let l = String.length s in
            !i + l <= n && String.sub src !i l = s)
          puncts
      in
      match matched with
      | Some s ->
          i := !i + String.length s;
          push (Tpunct s) p
      | None -> err "unexpected character %C" c
    end
  done;
  push Teof (pos ());
  { toks = Array.of_list (List.rev !toks) }

let token_to_string = function
  | Tint (v, _) -> Int64.to_string v
  | Tfloat (v, _) -> string_of_float v
  | Tstr s -> Printf.sprintf "%S" s
  | Tid s -> s
  | Tkw s -> s
  | Tpunct s -> Printf.sprintf "'%s'" s
  | Teof -> "<eof>"
