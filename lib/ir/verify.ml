(* IR verifier: structural and type invariants. Raises [Invalid] with a
   list of diagnostics so tests can assert on specific failures. *)

open Proteus_support

exception Invalid of string list

let verify_func (m : Ir.modul) (f : Ir.func) =
  let errs = ref [] in
  let err fmt = Format.kasprintf (fun s -> errs := (f.fname ^ ": " ^ s) :: !errs) fmt in
  if (not f.is_decl) && f.blocks = [] then err "defined function has no blocks";
  let labels = List.map (fun (b : Ir.block) -> b.label) f.blocks in
  let label_set = Util.Sset.of_list labels in
  if Util.Sset.cardinal label_set <> List.length labels then err "duplicate block labels";
  let check_label where l =
    if not (Util.Sset.mem l label_set) then err "%s: unknown block %%%s" where l
  in
  let defined = Array.make (Ir.nregs f) false in
  List.iter (fun (_, r) -> defined.(r) <- true) f.params;
  (* First pass: collect definitions, detect redefinitions. *)
  List.iter
    (fun (b : Ir.block) ->
      List.iter
        (fun i ->
          match Ir.def_of i with
          | Some d ->
              if d < 0 || d >= Ir.nregs f then err "def of out-of-range register r%d" d
              else if defined.(d) then err "register r%d defined twice" d
              else defined.(d) <- true
          | None -> ())
        b.insts)
    f.blocks;
  let check_operand where o =
    match o with
    | Ir.Reg r ->
        if r < 0 || r >= Ir.nregs f then err "%s: out-of-range register r%d" where r
        else if not defined.(r) then err "%s: use of undefined register r%d" where r
    | Ir.Glob g ->
        if Ir.find_global_opt m g = None && Ir.find_func_opt m g = None then
          err "%s: unknown global @%s" where g
    | Ir.Imm _ -> ()
  in
  let expect_ty where want got =
    if not (Types.equal want got) then
      err "%s: expected %s, got %s" where (Types.to_string want) (Types.to_string got)
  in
  let oty o = Ir.operand_ty m f o in
  List.iter
    (fun (b : Ir.block) ->
      let seen_nonphi = ref false in
      List.iter
        (fun i ->
          (match i with
          | Ir.IPhi _ -> if !seen_nonphi then err "%s: phi after non-phi" b.label
          | _ -> seen_nonphi := true);
          List.iter (check_operand b.label) (Ir.operands_of i);
          match i with
          | Ir.IBin (d, op, x, y) ->
              let dt = Ir.reg_ty f d in
              if Ops.is_float_binop op && not (Types.is_float dt) then
                err "%s: float binop on %s" b.label (Types.to_string dt);
              if (not (Ops.is_float_binop op)) && not (Types.is_int dt) then
                err "%s: int binop on %s" b.label (Types.to_string dt);
              expect_ty b.label dt (oty x);
              expect_ty b.label dt (oty y)
          | Ir.ICmp (d, _, x, y) ->
              expect_ty b.label Types.TBool (Ir.reg_ty f d);
              expect_ty b.label (oty x) (oty y)
          | Ir.ISelect (d, c, x, y) ->
              expect_ty b.label Types.TBool (oty c);
              expect_ty b.label (Ir.reg_ty f d) (oty x);
              expect_ty b.label (Ir.reg_ty f d) (oty y)
          | Ir.ICast (_, _, _) -> ()
          | Ir.ILoad (d, p) -> (
              match oty p with
              | Types.TPtr (t, _) -> expect_ty b.label (Ir.reg_ty f d) t
              | t -> err "%s: load from non-pointer %s" b.label (Types.to_string t))
          | Ir.IStore (v, p) -> (
              match oty p with
              | Types.TPtr (t, _) -> expect_ty b.label t (oty v)
              | t -> err "%s: store to non-pointer %s" b.label (Types.to_string t))
          | Ir.IGep (d, p, idx) ->
              if not (Types.is_ptr (oty p)) then err "%s: gep on non-pointer" b.label;
              if not (Types.is_int (oty idx)) then err "%s: gep index not integer" b.label;
              if not (Types.is_ptr (Ir.reg_ty f d)) then
                err "%s: gep result not pointer" b.label
          | Ir.ICall (_, callee, _) ->
              if
                (not (Ir.Intrinsics.is_intrinsic callee))
                && Ir.find_func_opt m callee = None
              then err "%s: call to unknown function @%s" b.label callee
          | Ir.IPhi (d, incoming) ->
              if incoming = [] then err "%s: empty phi" b.label;
              List.iter
                (fun (l, v) ->
                  check_label (b.label ^ " phi") l;
                  match v with
                  | Ir.Reg r when r < Ir.nregs f ->
                      expect_ty b.label (Ir.reg_ty f d) (Ir.reg_ty f r)
                  | Ir.Imm k -> expect_ty b.label (Ir.reg_ty f d) (Konst.ty_of k)
                  | _ -> ())
                incoming
          | Ir.IAlloca (_, _, n) -> if n <= 0 then err "%s: alloca of %d" b.label n)
        b.insts;
      (match b.term with
      | Ir.TBr l -> check_label b.label l
      | Ir.TCondBr (c, t, e) ->
          check_operand b.label c;
          expect_ty b.label Types.TBool (oty c);
          check_label b.label t;
          check_label b.label e
      | Ir.TRet None ->
          if not (Types.equal f.ret Types.TVoid) then err "%s: ret void from non-void" b.label
      | Ir.TRet (Some v) ->
          check_operand b.label v;
          expect_ty b.label f.ret (oty v)
      | Ir.TUnreachable -> ()))
    f.blocks;
  (* SSA structure over the reachable CFG: phi incoming edges must match
     the actual predecessors one-for-one, and every use must be
     dominated by its definition. These are exactly the invariants a
     buggy specializer or optimizer breaks first, so the JIT verify
     gate leans on them. Skipped when labels are broken (no sane CFG)
     and for unreachable blocks (dominance is undefined there). *)
  if
    (not f.is_decl)
    && f.blocks <> []
    && Util.Sset.cardinal label_set = List.length labels
  then begin
    let cfg = Cfg.build f in
    let live = Cfg.reachable cfg in
    let dom = Dom.compute cfg in
    let entry_label = (Ir.entry f).Ir.label in
    (* First definition site of each register: (block, instruction
       index); parameters are defined "before" the entry block. *)
    let def_site = Hashtbl.create 64 in
    List.iter (fun (_, r) -> Hashtbl.replace def_site r (entry_label, -1)) f.params;
    List.iter
      (fun (b : Ir.block) ->
        List.iteri
          (fun k i ->
            match Ir.def_of i with
            | Some d when not (Hashtbl.mem def_site d) ->
                Hashtbl.replace def_site d (b.label, k)
            | _ -> ())
          b.insts)
      f.blocks;
    let dominates_use ~use_block ~use_idx r =
      match Hashtbl.find_opt def_site r with
      | None -> true (* undefined: already reported above *)
      | Some (db, dk) ->
          if db = use_block then dk < use_idx else Dom.dominates dom db use_block
    in
    let check_dominance b k where i =
      List.iter
        (fun o ->
          match o with
          | Ir.Reg r when not (dominates_use ~use_block:b ~use_idx:k r) ->
              err "%s: use of r%d is not dominated by its definition" where r
          | _ -> ())
        (match i with `Instr i -> Ir.operands_of i | `Term t -> Ir.term_operands t)
    in
    List.iter
      (fun (b : Ir.block) ->
        if Util.Sset.mem b.label live then begin
          let preds =
            List.filter (fun p -> Util.Sset.mem p live) (Cfg.preds cfg b.label)
          in
          let pred_set = Util.Sset.of_list preds in
          List.iteri
            (fun k i ->
              match i with
              | Ir.IPhi (_, incoming) ->
                  let inc_labels = List.map fst incoming in
                  let inc_set = Util.Sset.of_list inc_labels in
                  if Util.Sset.cardinal inc_set <> List.length inc_labels then
                    err "%s: phi has duplicate incoming labels" b.label;
                  Util.Sset.iter
                    (fun l ->
                      if not (Util.Sset.mem l pred_set) then
                        err "%s: phi incoming from non-predecessor %%%s" b.label l)
                    inc_set;
                  Util.Sset.iter
                    (fun p ->
                      if not (Util.Sset.mem p inc_set) then
                        err "%s: phi is missing an incoming value for predecessor %%%s"
                          b.label p)
                    pred_set;
                  (* A phi value must be available at the end of its
                     incoming edge, not at the phi itself. *)
                  List.iter
                    (fun (l, v) ->
                      match v with
                      | Ir.Reg r
                        when Util.Sset.mem l pred_set
                             && not
                                  (dominates_use ~use_block:l
                                     ~use_idx:max_int r) ->
                          err
                            "%s: phi value r%d does not dominate incoming edge \
                             from %%%s"
                            b.label r l
                      | _ -> ())
                    incoming
              | _ -> check_dominance b.label k b.label (`Instr i))
            b.insts;
          check_dominance b.label (List.length b.insts) b.label (`Term b.term)
        end)
      f.blocks
  end;
  !errs

let verify_module (m : Ir.modul) =
  let errs = List.concat_map (fun f -> verify_func m f) m.funcs in
  let errs =
    errs
    @ List.filter_map
        (fun (a : Ir.annotation) ->
          if Ir.find_func_opt m a.afunc = None then
            Some (Printf.sprintf "annotation references unknown function @%s" a.afunc)
          else None)
        m.annotations
  in
  if errs <> [] then raise (Invalid (List.rev errs))

let check m =
  match verify_module m with
  | () -> Ok ()
  | exception Invalid errs -> Error errs
