test/test_ir.ml: Alcotest Array Bitcode Builder Cfg Dom Int32 Int64 Interp Ir Konst List Loopinfo Ops Proteus_ir Proteus_support QCheck QCheck_alcotest String Types Util Verify
