lib/hecbench/suite.ml: Adam App Feykac List Lulesh Proteus_support Rsbench String Sw4ck Wsm5
