lib/hecbench/lulesh.ml: App Printf
