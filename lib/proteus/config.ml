(* Proteus JIT configuration knobs, matching the paper's experiment
   modes: None (JIT with O3 but no specialization, Fig. 6), LB, RCF and
   LB+RCF (Sec. 4.5), with in-memory and persistent caching toggles,
   plus the fault-containment policy (fault injection plan and kernel
   quarantine thresholds). *)

(* Which annotated arguments enter the specialization key.
   [Spec_all] keys every annotated argument (the paper's behaviour);
   [Spec_advise] consults the SpecAdvisor impact report and drops
   arguments scoring below [spec_threshold], trading a little folding
   for fewer JIT compiles and smaller caches; [Spec_none] keys no
   argument values (launch bounds still apply under LB). *)
type spec_policy = Spec_all | Spec_advise | Spec_none

let policy_name = function
  | Spec_all -> "all"
  | Spec_advise -> "advise"
  | Spec_none -> "none"

let policy_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "all" -> Some Spec_all
  | "advise" -> Some Spec_advise
  | "none" -> Some Spec_none
  | _ -> None

type t = {
  enable_rcf : bool; (* runtime constant folding of kernel arguments *)
  enable_lb : bool; (* dynamic launch bounds *)
  use_mem_cache : bool;
  persistent_dir : string option; (* None disables the disk cache *)
  fault_plan : Fault.plan; (* programmatic fault injection; [] = none *)
  quarantine_threshold : int;
      (* consecutive JIT failures of one (mid, sym) before the kernel is
         quarantined to the AOT path; 0 disables quarantine *)
  quarantine_backoff : int;
      (* launches a quarantined kernel skips JIT before one retry is
         allowed (doubling on repeated failure); 0 = quarantine forever *)
  verify_jit : bool;
      (* PROTEUS_VERIFY: re-run the IR verifier + KernelSan on
         post-specialize and post-O3 IR; a violation becomes a counted
         AOT fallback instead of reaching codegen *)
  verify_level : int;
      (* PROTEUS_VERIFY=2 additionally runs TransVal translation
         validation: post-specialize IR is proven equivalent to the
         decoded IR (spec args substituted) and post-O3 IR to
         post-specialize. A refuted verdict is contained exactly like a
         verifier rejection (counted AOT fallback + quarantine
         pressure); unproven is counted but non-fatal unless
         [verify_strict]. 0 = off, 1 = verifier + KernelSan only *)
  verify_strict : bool;
      (* PROTEUS_VERIFY_STRICT: treat an unproven TransVal verdict at
         verify level 2 as a rejection instead of a counted warning *)
  exec_domains : int;
      (* PROTEUS_EXEC_DOMAINS: domains the executor schedules
         thread-blocks across; 0 = automatic (the executor picks the
         recommended domain count); 1 forces serial execution *)
  spec_policy : spec_policy; (* PROTEUS_SPEC_POLICY=all|advise|none *)
  spec_threshold : float;
      (* PROTEUS_SPEC_THRESHOLD: minimum SpecAdvisor score an argument
         needs to stay in the key under the advise policy *)
  stage_deadline_ms : float;
      (* PROTEUS_STAGE_DEADLINE_MS: wall-clock budget per JIT stage; an
         overrun is a transient failure (retried with backoff, then
         AOT). 0 disables the check - the default, so tier-1 runs stay
         free of wall-clock nondeterminism *)
  retry_max : int;
      (* PROTEUS_RETRY_MAX: transient-failure retries per launch before
         the AOT fallback; permanent failures never retry *)
  retry_backoff_ms : float;
      (* PROTEUS_RETRY_BACKOFF_MS: base of the jittered exponential
         backoff between retries, charged to the simulated clock *)
  lock_timeout_ms : float;
      (* PROTEUS_LOCK_TIMEOUT_MS: bound on waiting for a cross-process
         cache entry lock; a timeout is a transient failure. 0 waits
         forever *)
  tier : bool;
      (* PROTEUS_TIER=on: tiered compilation. A cold launch dispatches
         the AOT artifact immediately and the specialized O3 compile
         runs in the background, hot-swapped in via the versioned
         cache before a later launch. Off (the default) keeps the
         paper's block-on-first-launch behaviour *)
  tier_threshold : int;
      (* PROTEUS_TIER_THRESHOLD: launches a specialization key must
         accumulate before it is hot enough to spend a background O3
         compile on (profile-guided gate; minimum 1) *)
  tenant_quota : int;
      (* PROTEUS_TENANT_QUOTA: bytes one tenant may pin in the shared
         memory cache tier before its own LRU entries are evicted;
         0 = unlimited. Only meaningful when a Cachestore is shared
         across tenants (the serve loop) *)
}

let env_int name default =
  match Sys.getenv_opt name with
  | Some s -> ( match int_of_string_opt (String.trim s) with Some n when n >= 0 -> n | _ -> default)
  | None -> default

let env_float name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match float_of_string_opt (String.trim s) with
      | Some x when x >= 0.0 -> x
      | _ -> default)
  | None -> default

let env_policy name default =
  match Sys.getenv_opt name with
  | Some s -> Option.value (policy_of_string s) ~default
  | None -> default

(* PROTEUS_VERIFY is a level: booleans keep their historical meaning
   (on = 1) and "2" opts into translation validation. *)
let env_verify_level name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "0" | "false" | "no" | "off" | "" -> 0
      | "1" | "true" | "yes" | "on" -> 1
      | "2" -> 2
      | _ -> default)
  | None -> default

let env_bool name default =
  match Sys.getenv_opt name with
  | Some s -> (
      match String.lowercase_ascii (String.trim s) with
      | "1" | "true" | "yes" | "on" -> true
      | "0" | "false" | "no" | "off" | "" -> false
      | _ -> default)
  | None -> default

let default =
  {
    enable_rcf = true;
    enable_lb = true;
    use_mem_cache = true;
    persistent_dir = None;
    fault_plan = [];
    quarantine_threshold = env_int "PROTEUS_QUARANTINE_THRESHOLD" 3;
    quarantine_backoff = env_int "PROTEUS_QUARANTINE_BACKOFF" 16;
    verify_jit = env_verify_level "PROTEUS_VERIFY" 0 >= 1;
    verify_level = env_verify_level "PROTEUS_VERIFY" 0;
    verify_strict = env_bool "PROTEUS_VERIFY_STRICT" false;
    exec_domains = env_int "PROTEUS_EXEC_DOMAINS" 0;
    spec_policy = env_policy "PROTEUS_SPEC_POLICY" Spec_all;
    spec_threshold =
      env_float "PROTEUS_SPEC_THRESHOLD" Proteus_analysis.Specadvisor.default_threshold;
    stage_deadline_ms = env_float "PROTEUS_STAGE_DEADLINE_MS" 0.0;
    retry_max = env_int "PROTEUS_RETRY_MAX" 2;
    retry_backoff_ms = env_float "PROTEUS_RETRY_BACKOFF_MS" 1.0;
    lock_timeout_ms = env_float "PROTEUS_LOCK_TIMEOUT_MS" 1000.0;
    tier = env_bool "PROTEUS_TIER" false;
    tier_threshold = max 1 (env_int "PROTEUS_TIER_THRESHOLD" 2);
    tenant_quota = env_int "PROTEUS_TENANT_QUOTA" 0;
  }

(* Paper mode names *)
let mode_none = { default with enable_rcf = false; enable_lb = false }
let mode_lb = { default with enable_rcf = false; enable_lb = true }
let mode_rcf = { default with enable_rcf = true; enable_lb = false }
let mode_lb_rcf = default

(* The verification level actually in force: tests and embedders that
   set [verify_jit] directly (without touching [verify_level]) keep
   level-1 behaviour. *)
let effective_verify_level c =
  if c.verify_level >= 1 then c.verify_level else if c.verify_jit then 1 else 0

let mode_name c =
  match (c.enable_rcf, c.enable_lb) with
  | false, false -> "None"
  | false, true -> "LB"
  | true, false -> "RCF"
  | true, true -> "LB+RCF"
