(* Shared analysis normalization: every IR-level analysis (Kernelsan,
   Specadvisor, Perflint) wants the same view of a module — a clone
   simplified with simplifycfg + mem2reg so scalar locals become
   registers the dataflow and affine machinery can see through, with
   dbg.loc markers preserved for finding provenance.

   Factoring the clone here fixes a subtle disagreement: when two
   analyses each normalized privately, simplifycfg could merge blocks
   in clone-order-dependent ways and the passes would report findings
   against different block ids for the same kernel. Drivers that run
   more than one analysis normalize once with [clone] and hand the
   *same* normalized module to each `*_normalized` entry point, so
   block ids (and register numbering) agree across reports — and the
   simplifycfg+mem2reg work is paid once per kernel instead of once
   per analysis.

   [clone] is additionally memoized on the *identity* of the source
   module paired with its mutation generation ([Ir.modul.mgen]): a
   driver that runs analyze + perflint + transval over one compiled
   module pays for one normalization, and the later analyses read the
   very same clone (they treat it as read-only). A recompiled module
   never aliases a stale clone (distinct physical identity), and a
   module mutated in place — the JIT specializes and runs O3 on the
   same physical module between verify gates — invalidates its entry
   because every in-place mutator bumps the generation. The cache is
   capped so long-running processes do not pin dead modules, and
   guarded by a mutex: background tier compiles and the multi-tenant
   serve loop normalize concurrently from several domains. *)

open Proteus_ir

let cache_cap = 8
let lock = Mutex.create ()
let cache : ((Ir.modul * int) * Ir.modul) list ref = ref []
let hits = ref 0
let misses = ref 0

let cache_hits () = Mutex.protect lock (fun () -> !hits)
let cache_misses () = Mutex.protect lock (fun () -> !misses)

let reset_cache () =
  Mutex.protect lock @@ fun () ->
  cache := [];
  hits := 0;
  misses := 0

let normalize_fresh (m : Ir.modul) : Ir.modul =
  let m = Ir.clone_module m in
  let stats = Proteus_opt.Pass.mk_stats () in
  Proteus_opt.Pass.run_pipeline stats
    [ Proteus_opt.Simplifycfg.pass; Proteus_opt.Mem2reg.pass ]
    m;
  m

let clone (m : Ir.modul) : Ir.modul =
  let gen = m.Ir.mgen in
  let cached =
    Mutex.protect lock @@ fun () ->
    match List.find_opt (fun ((k, g), _) -> k == m && g = gen) !cache with
    | Some (_, c) ->
        incr hits;
        Some c
    | None -> None
  in
  match cached with
  | Some c -> c
  | None ->
      (* normalize outside the lock: it runs whole opt passes, and a
         racing double-normalization is only wasted work, never wrong *)
      let c = normalize_fresh m in
      Mutex.protect lock (fun () ->
          match List.find_opt (fun ((k, g), _) -> k == m && g = gen) !cache with
          | Some (_, c') ->
              incr hits;
              c'
          | None ->
              incr misses;
              let keep =
                if List.length !cache >= cache_cap then
                  List.filteri (fun i _ -> i < cache_cap - 1) !cache
                else !cache
              in
              cache := ((m, gen), c) :: keep;
              c)
