(* Local constant folding, algebraic simplification and strength
   reduction (LLVM's instcombine, in miniature). Folded definitions are
   recorded in a substitution map and rewritten in one sweep. *)

open Proteus_support
open Proteus_ir

let imm_of = function Ir.Imm k -> Some k | Ir.Reg _ | Ir.Glob _ -> None

let is_int_zero = function Ir.Imm (Konst.KInt (0L, _)) -> true | _ -> false
let is_int_one = function Ir.Imm (Konst.KInt (1L, _)) -> true | _ -> false
let is_fp v = function Ir.Imm (Konst.KFloat (x, _)) -> x = v | _ -> false

(* Bit-level float test: [is_fp 0.0] matches -0.0 too (OCaml float
   equality), which is too loose for identities that are only sound for
   one sign of zero. *)
let is_fp_bits v = function
  | Ir.Imm (Konst.KFloat (x, _)) -> Int64.bits_of_float x = Int64.bits_of_float v
  | _ -> false

(* 1/c is exact iff c is a power of two (and the reciprocal neither
   overflows nor underflows at the operand's width). *)
let exact_recip c bits =
  c <> 0.0
  && (let m, _ = Float.frexp c in Float.abs m = 0.5)
  &&
  let r = if bits = 32 then Util.to_f32 (1.0 /. c) else 1.0 /. c in
  Float.is_finite r && r <> 0.0

let same_operand a b =
  match (a, b) with
  | Ir.Reg x, Ir.Reg y -> x = y
  | Ir.Imm x, Ir.Imm y -> Konst.equal x y
  | Ir.Glob x, Ir.Glob y -> x = y
  | _ -> false

(* Result of simplifying one instruction. *)
type action =
  | Keep
  | Replace of Ir.instr (* rewrite in place *)
  | Subst of Ir.operand (* definition equals this operand; delete instr *)

let simplify_instr (f : Ir.func) (i : Ir.instr) : action =
  match i with
  | Ir.IBin (d, op, a, b) -> (
      match (imm_of a, imm_of b) with
      | Some ka, Some kb -> Subst (Ir.Imm (Konst.binop op ka kb))
      | _ -> (
          let open Ops in
          match (op, a, b) with
          (* canonicalize constants to the right for commutative ops *)
          | _, Ir.Imm _, _ when Ops.is_commutative op && imm_of b = None ->
              Replace (Ir.IBin (d, op, b, a))
          | (Add | Sub), x, z when is_int_zero z -> Subst x
          | Mul, _, z when is_int_zero z -> Subst z
          | Mul, x, o when is_int_one o -> Subst x
          | (SDiv | SRem), _, z when is_int_zero z ->
              (* division by zero yields 0 in our semantics *)
              Subst (Ir.Imm (Konst.kint ~bits:(match Ir.reg_ty f d with Types.TInt b -> b | _ -> 32) 0L))
          | SDiv, x, o when is_int_one o -> Subst x
          | Mul, x, Ir.Imm (Konst.KInt (k, bits)) -> (
              match Util.pow2_log2 k with
              | Some sh -> Replace (Ir.IBin (d, Shl, x, Ir.Imm (Konst.kint ~bits (Int64.of_int sh))))
              | None -> Keep)
          | (Shl | LShr | AShr), x, z when is_int_zero z -> Subst x
          | And, _, z when is_int_zero z -> Subst z
          | Or, x, z when is_int_zero z -> Subst x
          | Xor, x, z when is_int_zero z -> Subst x
          | And, x, y when same_operand x y -> Subst x
          | Or, x, y when same_operand x y -> Subst x
          | Sub, x, y when same_operand x y && Types.is_int (Ir.reg_ty f d) ->
              Subst (Ir.Imm (Konst.kint ~bits:(match Ir.reg_ty f d with Types.TInt b -> b | _ -> 32) 0L))
          | Xor, x, y when same_operand x y && Types.is_int (Ir.reg_ty f d) ->
              Subst (Ir.Imm (Konst.kint ~bits:(match Ir.reg_ty f d with Types.TInt b -> b | _ -> 32) 0L))
          (* FP identities are applied only when bit-exact for every
             input (including NaN, infinities and signed zeros): the
             JIT's contract - checked by the differential fuzzer - is
             that O3 and specialization never change results.
             Dropped as unsound: x*0 -> 0 (NaN/Inf), x+0 -> x (-0.0),
             and the general reciprocal rewrite (inexact rounding). *)
          | FAdd, x, z when is_fp_bits (-0.0) z -> Subst x (* x + -0.0 = x *)
          | FSub, x, z when is_fp_bits 0.0 z -> Subst x (* x - +0.0 = x *)
          | FMul, x, o when is_fp 1.0 o -> Subst x
          | FDiv, x, o when is_fp 1.0 o -> Subst x
          | FMul, x, Ir.Imm (Konst.KFloat (2.0, _)) ->
              Replace (Ir.IBin (d, FAdd, x, x))
          (* division by a power-of-two constant becomes a multiply;
             the reciprocal is exact, so results are unchanged *)
          | FDiv, x, Ir.Imm (Konst.KFloat (c, bits)) when exact_recip c bits ->
              Replace
                (Ir.IBin
                   ( d,
                     FMul,
                     x,
                     Ir.Imm
                       (Konst.KFloat
                          ( (if bits = 32 then Util.to_f32 (1.0 /. c) else 1.0 /. c),
                            bits )) ))
          | _ -> Keep))
  | Ir.ICmp (_, op, a, b) -> (
      match (imm_of a, imm_of b) with
      | Some ka, Some kb -> Subst (Ir.Imm (Konst.cmpop op ka kb))
      | _ ->
          if same_operand a b then
            match op with
            | Ops.CEq | Ops.CLe | Ops.CGe -> Subst (Ir.Imm (Konst.kbool true))
            | Ops.CNe | Ops.CLt | Ops.CGt -> Subst (Ir.Imm (Konst.kbool false))
          else Keep)
  | Ir.ISelect (_, c, x, y) -> (
      match imm_of c with
      | Some k -> Subst (if Konst.as_bool k then x else y)
      | None -> if same_operand x y then Subst x else Keep)
  | Ir.ICast (d, op, a) -> (
      match imm_of a with
      | Some k -> (
          match Konst.cast op k (Ir.reg_ty f d) with
          | k' ->
              (* pointer bitcasts must keep their static type: folding
                 them to a plain integer breaks load/store typing *)
              if Types.equal (Konst.ty_of k') (Ir.reg_ty f d) then Subst (Ir.Imm k')
              else Keep
          | exception _ -> Keep)
      | None -> (
          (* bitcast is the identity only when it does not retype the
             value (pointer element types drive GEP scaling) *)
          match (op, a) with
          | Ops.Bitcast, Ir.Reg r when Types.equal (Ir.reg_ty f r) (Ir.reg_ty f d) ->
              Subst a
          | _ -> Keep))
  | Ir.IGep (_, p, idx) when is_int_zero idx -> Subst p
  | Ir.ICall (Some _, callee, args) when Ir.Intrinsics.is_math callee -> (
      let imms = List.map imm_of args in
      if List.for_all Option.is_some imms then
        let vals = List.map Option.get imms in
        match Interp.eval_math callee vals with
        | k -> Subst (Ir.Imm k)
        | exception _ -> Keep
      else Keep)
  | Ir.IPhi (_, incoming) -> (
      (* all-same phi *)
      match incoming with
      | (_, v) :: rest when List.for_all (fun (_, v') -> same_operand v v') rest -> Subst v
      | _ -> Keep)
  | _ -> Keep

let run (_m : Ir.modul) (f : Ir.func) : bool =
  let changed = ref false in
  let continue_ = ref true in
  while !continue_ do
    continue_ := false;
    let subst : (int, Ir.operand) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Ir.block) ->
        b.insts <-
          List.filter_map
            (fun i ->
              match simplify_instr f i with
              | Keep -> Some i
              | Replace i' ->
                  changed := true;
                  continue_ := true;
                  Some i'
              | Subst v -> (
                  match Ir.def_of i with
                  | Some d when v <> Ir.Reg d ->
                      Hashtbl.replace subst d v;
                      changed := true;
                      continue_ := true;
                      None
                  | _ -> Some i))
            b.insts)
      f.Ir.blocks;
    if Hashtbl.length subst > 0 then begin
      let rec resolve o =
        match o with
        | Ir.Reg r -> (
            match Hashtbl.find_opt subst r with Some v -> resolve v | None -> o)
        | _ -> o
      in
      List.iter
        (fun (b : Ir.block) ->
          b.insts <- List.map (Ir.map_operands resolve) b.insts;
          b.term <- Ir.map_term_operands resolve b.term)
        f.Ir.blocks
    end
  done;
  !changed

let pass = { Pass.name = "instcombine"; run }
