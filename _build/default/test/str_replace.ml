(* tiny test helper: first-occurrence string replacement *)
let replace (hay : string) (needle : string) (replacement : string) : string =
  let nl = String.length needle and hl = String.length hay in
  let rec find i = if i + nl > hl then None else if String.sub hay i nl = needle then Some i else find (i + 1) in
  match find 0 with
  | Some i -> String.sub hay 0 i ^ replacement ^ String.sub hay (i + nl) (hl - i - nl)
  | None -> invalid_arg "Str_replace.replace: needle not found"
