(* Threaded code: a Mach.mfunc pre-decoded once per kernel into flat
   arrays the SIMT executor can run without per-instruction overhead.

   The reference interpreter (Exec.run_warp) re-resolves [List.nth]
   operand lists, [Option.get] destinations, string block labels and a
   string-keyed ipdom map on every dynamic instruction, and allocates
   [Konst.t] boxes per lane per memory access. Decoding replaces all of
   that with integer block ids, an int-indexed ipdom table, and
   per-instruction records whose operands are already split into
   int-context / float-context accessors - the classic
   threaded-code/pre-decoding transformation (OCamlJIT 2.0 lineage).

   A decoded [program] is immutable and carries no launch state, so one
   decode is shared by every launch of the kernel (Gpurt keeps a
   per-kernel program; the JIT attaches programs to code-cache entries
   as a third cache tier) and by all domains of a multicore launch.

   Semantics note: every operation here must be bit-identical to the
   reference interpreter - the differential qcheck/HeCBench tests and
   the "paper tables unchanged" gate both depend on it. When editing,
   change Exec.run_warp first and mirror the semantics here. *)

open Proteus_support
open Proteus_ir
open Proteus_backend

(* Operand pre-resolved for an integer-context read (Exec.src_i). *)
type isrc =
  | IV of int (* vector register id *)
  | IS of int (* scalar register id *)
  | IK of int64 (* constant, via Konst.as_int *)
  | IG of string (* device global symbol, resolved per launch *)

(* Operand pre-resolved for a float-context read (Exec.src_f). *)
type fsrc =
  | FV of int
  | FS of int
  | FK of float (* constant, via Konst.as_float *)
  | FBad (* float read of a symbol: traps like the reference *)

(* Destination register: class resolved, no Option.get at run time. *)
type tdst = DV of int | DS of int

(* Integer binops with the type-directed semantics of
   [Konst.as_int (Konst.binop op (kint ~bits x) (kint ~bits y))]
   specialized away from Konst boxing (see Exec_t.ibinop). *)
type ibinop =
  | BAdd | BSub | BMul | BSDiv | BSRem
  | BAnd | BOr | BXor | BShl | BLShr | BAShr
  | BSMin | BSMax

type fbinop = BFAdd | BFSub | BFMul | BFDiv | BFRem | BFMin | BFMax

(* Casts with source/destination widths pre-extracted. *)
type tcast =
  | CSiToFp of int * bool (* src int bits, round result to f32 *)
  | CFpToSi of int (* dst int bits *)
  | CFpExt
  | CFpTrunc
  | CZext of int * int (* src bits, dst bits *)
  | CSext of int * int
  | CTrunc of int (* dst bits *)
  | CBitFF (* float <- float *)
  | CBitIF (* float <- int bits *)
  | CBitFI (* int <- float bits *)
  | CBitII

(* Memory access type, pre-dispatched from Types.ty so loads/stores hit
   Gmem's width-specific primitives without constructing Konst.t. *)
type mty =
  | MBool
  | MI8
  | MI32
  | MI64 (* TInt 64 and TPtr *)
  | MF32
  | MF64

type atomic = AAddF32 | AAddF64 | AAddI32

type tquery =
  | QTidX | QTidY | QTidZ
  | QCtaidX | QCtaidY | QCtaidZ
  | QNtidX | QNtidY | QNtidZ
  | QNctaidX | QNctaidY | QNctaidZ

(* Math intrinsics as first-class variants rather than stored closures:
   the executor dispatches on the tag and calls the C external directly,
   which (unlike a call through a captured [float -> float]) keeps the
   operand and result unboxed in the per-lane loop. Unknown names fall
   through to Ir.Intrinsics at run time, preserving the reference
   interpreter's trap-on-execute behaviour. *)
type math1 =
  | M1Sqrt | M1Rsqrt | M1Exp | M1Log | M1Sin | M1Cos
  | M1Fabs | M1Floor | M1Ceil | M1Tanh
  | M1Gen of string

type math2 = M2Pow | M2Atan2 | M2Gen of string

type tinstr =
  | TIBin of ibinop * int * tdst * isrc * isrc (* bits *)
  | TFBin of fbinop * bool * tdst * fsrc * fsrc (* round to f32 *)
  | TFBinLong of fbinop * bool * tdst * fsrc * fsrc
      (* FDiv/FRem: long-latency pipe, extra math_warp counter *)
  | TIBinLong of ibinop * int * tdst * isrc * isrc (* SDiv/SRem *)
  | TICmp of Ops.cmpop * int * tdst * isrc * isrc (* bits *)
  | TFCmp of Ops.cmpop * tdst * fsrc * fsrc
  | TSelI of tdst * isrc * isrc * isrc (* cnd, a, b *)
  | TSelF of tdst * isrc * fsrc * fsrc
  | TCast of tcast * tdst * isrc * fsrc
      (* exactly one of the operands is live, per the cast kind *)
  | TMovI of tdst * isrc
  | TMovF of tdst * fsrc
  | TLd of Mach.space * mty * tdst * isrc (* addr *)
  | TSt of Mach.space * mty * isrc * fsrc * isrc
      (* int value | float value (per mty), addr *)
  | TQuery of tquery * tdst
  | TMath1 of math1 * bool * tdst * fsrc (* round to f32 *)
  | TMath2 of math2 * bool * tdst * fsrc * fsrc
  | TFma of bool * tdst * fsrc * fsrc * fsrc
  | TAtomic of atomic * tdst option * isrc * isrc * fsrc
      (* addr, int operand, float operand (one live per atomic) *)
  | TBarrier
  | TFrame of tdst * int64 (* immediate offset *)
  | TArg of int * tdst
  | TSpillStS of int * int (* slot, scalar reg *)
  | TSpillStV of int * int (* slot, vector reg *)
  | TSpillLd of int * tdst

type tterm = TTbr of int | TTcbr of isrc * int * int | TTret

type tblock = { tcode : tinstr array; tterm : tterm }

type program = {
  tf : Mach.mfunc; (* the decoded function; used for identity checks *)
  entry : int;
  blocks : tblock array;
  labels : string array; (* block id -> label, for trap messages *)
  ipdom : int array; (* block id -> reconvergence block id, -1 = <exit> *)
  has_atomics : bool; (* forces the serial (single-domain) schedule *)
  has_barriers : bool;
}

exception Decode_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Decode_error s)) fmt

let ibits_of = function
  | Types.TBool -> 1
  | Types.TInt b -> b
  | Types.TPtr _ -> 64
  | t -> fail "Tcode.ibits_of: %s" (Types.to_string t)

let is_float_ty = function Types.TFloat _ -> true | _ -> false
let fbits_of = function Types.TFloat b -> b | _ -> 64

let isrc_of (s : Mach.msrc) : isrc =
  match s with
  | Mach.Rs { Mach.rid; rcls = Mach.CV } -> IV rid
  | Mach.Rs { Mach.rid; rcls = Mach.CS } -> IS rid
  | Mach.Ki k -> IK (Konst.as_int k)
  | Mach.Gs g -> IG g

let fsrc_of (s : Mach.msrc) : fsrc =
  match s with
  | Mach.Rs { Mach.rid; rcls = Mach.CV } -> FV rid
  | Mach.Rs { Mach.rid; rcls = Mach.CS } -> FS rid
  | Mach.Ki k -> FK (Konst.as_float k)
  | Mach.Gs _ -> FBad

let dst_of (d : Mach.reg option) : tdst =
  match d with
  | Some { Mach.rid; rcls = Mach.CV } -> DV rid
  | Some { Mach.rid; rcls = Mach.CS } -> DS rid
  | None -> fail "Tcode: instruction missing destination"

let mty_of (ty : Types.ty) : mty =
  match ty with
  | Types.TBool -> MBool
  | Types.TInt 8 -> MI8
  | Types.TInt 32 -> MI32
  | Types.TInt _ -> MI64
  | Types.TFloat 32 -> MF32
  | Types.TFloat _ -> MF64
  | Types.TPtr _ -> MI64
  | Types.TVoid | Types.TArr _ -> fail "Tcode.mty_of: %s" (Types.to_string ty)

let mty_is_float = function MF32 | MF64 -> true | _ -> false

let nth srcs i =
  match List.nth_opt srcs i with
  | Some s -> s
  | None -> fail "Tcode: missing operand %d" i

let ibinop_of (op : Ops.binop) : ibinop =
  match op with
  | Ops.Add -> BAdd
  | Ops.Sub -> BSub
  | Ops.Mul -> BMul
  | Ops.SDiv -> BSDiv
  | Ops.SRem -> BSRem
  | Ops.And -> BAnd
  | Ops.Or -> BOr
  | Ops.Xor -> BXor
  | Ops.Shl -> BShl
  | Ops.LShr -> BLShr
  | Ops.AShr -> BAShr
  | Ops.SMin -> BSMin
  | Ops.SMax -> BSMax
  | _ -> fail "Tcode: int binop expected, got %s" (Ops.binop_to_string op)

let fbinop_of (op : Ops.binop) : fbinop =
  match op with
  | Ops.FAdd -> BFAdd
  | Ops.FSub -> BFSub
  | Ops.FMul -> BFMul
  | Ops.FDiv -> BFDiv
  | Ops.FRem -> BFRem
  | Ops.FMin -> BFMin
  | Ops.FMax -> BFMax
  | _ -> fail "Tcode: float binop expected, got %s" (Ops.binop_to_string op)

let math1_of = function
  | "math.sqrt" -> M1Sqrt
  | "math.rsqrt" -> M1Rsqrt
  | "math.exp" -> M1Exp
  | "math.log" -> M1Log
  | "math.sin" -> M1Sin
  | "math.cos" -> M1Cos
  | "math.fabs" -> M1Fabs
  | "math.floor" -> M1Floor
  | "math.ceil" -> M1Ceil
  | "math.tanh" -> M1Tanh
  | n -> M1Gen n

let math2_of = function
  | "math.pow" -> M2Pow
  | "math.atan2" -> M2Atan2
  | n -> M2Gen n

let query_of = function
  | "gpu.tid.x" -> QTidX
  | "gpu.tid.y" -> QTidY
  | "gpu.tid.z" -> QTidZ
  | "gpu.ctaid.x" -> QCtaidX
  | "gpu.ctaid.y" -> QCtaidY
  | "gpu.ctaid.z" -> QCtaidZ
  | "gpu.ntid.x" -> QNtidX
  | "gpu.ntid.y" -> QNtidY
  | "gpu.ntid.z" -> QNtidZ
  | "gpu.nctaid.x" -> QNctaidX
  | "gpu.nctaid.y" -> QNctaidY
  | "gpu.nctaid.z" -> QNctaidZ
  | q -> fail "Tcode: unknown query %s" q

let decode_instr (i : Mach.minstr) : tinstr =
  match i.Mach.op with
  | Mach.Obin (op, ty) ->
      if is_float_ty ty then begin
        let r32 = fbits_of ty = 32 in
        let a = fsrc_of (nth i.Mach.srcs 0) and b = fsrc_of (nth i.Mach.srcs 1) in
        match op with
        | Ops.FDiv | Ops.FRem -> TFBinLong (fbinop_of op, r32, dst_of i.Mach.dst, a, b)
        | _ -> TFBin (fbinop_of op, r32, dst_of i.Mach.dst, a, b)
      end
      else begin
        let bits = ibits_of ty in
        let a = isrc_of (nth i.Mach.srcs 0) and b = isrc_of (nth i.Mach.srcs 1) in
        match op with
        | Ops.SDiv | Ops.SRem -> TIBinLong (ibinop_of op, bits, dst_of i.Mach.dst, a, b)
        | _ -> TIBin (ibinop_of op, bits, dst_of i.Mach.dst, a, b)
      end
  | Mach.Ocmp (op, ty) ->
      if is_float_ty ty then
        TFCmp (op, dst_of i.Mach.dst, fsrc_of (nth i.Mach.srcs 0), fsrc_of (nth i.Mach.srcs 1))
      else
        TICmp
          ( op, ibits_of ty, dst_of i.Mach.dst,
            isrc_of (nth i.Mach.srcs 0), isrc_of (nth i.Mach.srcs 1) )
  | Mach.Osel ty ->
      let cnd = isrc_of (nth i.Mach.srcs 0) in
      if is_float_ty ty then
        TSelF (dst_of i.Mach.dst, cnd, fsrc_of (nth i.Mach.srcs 1), fsrc_of (nth i.Mach.srcs 2))
      else
        TSelI (dst_of i.Mach.dst, cnd, isrc_of (nth i.Mach.srcs 1), isrc_of (nth i.Mach.srcs 2))
  | Mach.Ocast (op, dty, sty) ->
      let a = nth i.Mach.srcs 0 in
      let dead_i = IK 0L and dead_f = FK 0.0 in
      let cast, ia, fa =
        match (op, is_float_ty sty, is_float_ty dty) with
        | Ops.SiToFp, false, true ->
            (CSiToFp (ibits_of sty, dty = Types.TFloat 32), isrc_of a, dead_f)
        | Ops.FpToSi, true, false -> (CFpToSi (ibits_of dty), dead_i, fsrc_of a)
        | Ops.FpExt, true, true -> (CFpExt, dead_i, fsrc_of a)
        | Ops.FpTrunc, true, true -> (CFpTrunc, dead_i, fsrc_of a)
        | Ops.Zext, false, false -> (CZext (ibits_of sty, ibits_of dty), isrc_of a, dead_f)
        | Ops.Sext, false, false -> (CSext (ibits_of sty, ibits_of dty), isrc_of a, dead_f)
        | Ops.Trunc, false, false -> (CTrunc (ibits_of dty), isrc_of a, dead_f)
        | Ops.Bitcast, true, true -> (CBitFF, dead_i, fsrc_of a)
        | Ops.Bitcast, false, true -> (CBitIF, isrc_of a, dead_f)
        | Ops.Bitcast, true, false -> (CBitFI, dead_i, fsrc_of a)
        | Ops.Bitcast, false, false -> (CBitII, isrc_of a, dead_f)
        | _ -> fail "Tcode: bad cast"
      in
      TCast (cast, dst_of i.Mach.dst, ia, fa)
  | Mach.Omov ty ->
      if is_float_ty ty then TMovF (dst_of i.Mach.dst, fsrc_of (nth i.Mach.srcs 0))
      else TMovI (dst_of i.Mach.dst, isrc_of (nth i.Mach.srcs 0))
  | Mach.Old (space, ty) ->
      TLd (space, mty_of ty, dst_of i.Mach.dst, isrc_of (nth i.Mach.srcs 0))
  | Mach.Ost (space, ty) ->
      let mty = mty_of ty in
      let v = nth i.Mach.srcs 0 and p = nth i.Mach.srcs 1 in
      if mty_is_float mty then TSt (space, mty, IK 0L, fsrc_of v, isrc_of p)
      else TSt (space, mty, isrc_of v, FK 0.0, isrc_of p)
  | Mach.Oquery q -> TQuery (query_of q, dst_of i.Mach.dst)
  | Mach.Omath (name, ty) -> (
      let r32 = fbits_of ty = 32 in
      let d = dst_of i.Mach.dst in
      match i.Mach.srcs with
      | [ a ] -> TMath1 (math1_of name, r32, d, fsrc_of a)
      | [ a; b ] -> TMath2 (math2_of name, r32, d, fsrc_of a, fsrc_of b)
      | [ a; b; c ] when name = "math.fma" ->
          TFma (r32, d, fsrc_of a, fsrc_of b, fsrc_of c)
      | _ -> fail "Tcode: math arity %s" name)
  | Mach.Oatomic name ->
      let kind =
        match name with
        | "gpu.atomic.add.f32" -> AAddF32
        | "gpu.atomic.add.f64" -> AAddF64
        | "gpu.atomic.add.i32" -> AAddI32
        | n -> fail "Tcode: atomic %s" n
      in
      let p = nth i.Mach.srcs 0 and v = nth i.Mach.srcs 1 in
      let dst =
        match i.Mach.dst with
        | Some { Mach.rid; rcls = Mach.CV } -> Some (DV rid)
        | Some { Mach.rid; rcls = Mach.CS } -> Some (DS rid)
        | None -> None
      in
      let iv, fv =
        match kind with
        | AAddI32 -> (isrc_of v, FK 0.0)
        | AAddF32 | AAddF64 -> (IK 0L, fsrc_of v)
      in
      TAtomic (kind, dst, isrc_of p, iv, fv)
  | Mach.Obarrier -> TBarrier
  | Mach.Oframe ->
      let off =
        match i.Mach.srcs with [ Mach.Ki k ] -> Konst.as_int k | _ -> 0L
      in
      TFrame (dst_of i.Mach.dst, off)
  | Mach.Oarg k -> TArg (k, dst_of i.Mach.dst)
  | Mach.Ospill_st slot -> (
      match nth i.Mach.srcs 0 with
      | Mach.Rs { Mach.rcls = Mach.CS; rid } -> TSpillStS (slot, rid)
      | Mach.Rs { Mach.rcls = Mach.CV; rid } -> TSpillStV (slot, rid)
      | _ -> fail "Tcode: spill of non-register")
  | Mach.Ospill_ld slot -> TSpillLd (slot, dst_of i.Mach.dst)

let decode (f : Mach.mfunc) : program =
  if f.Mach.blocks = [] then fail "Tcode.decode: kernel %s has no blocks" f.Mach.sym;
  let n = List.length f.Mach.blocks in
  let labels = Array.make n "" in
  let id_of : (string, int) Hashtbl.t = Hashtbl.create (2 * n) in
  List.iteri
    (fun i (b : Mach.mblock) ->
      labels.(i) <- b.Mach.mlab;
      Hashtbl.replace id_of b.Mach.mlab i)
    f.Mach.blocks;
  let bid lab =
    match Hashtbl.find_opt id_of lab with
    | Some i -> i
    | None -> fail "Tcode.decode: no block %s in %s" lab f.Mach.sym
  in
  let has_atomics = ref false and has_barriers = ref false in
  let blocks =
    Array.of_list
      (List.map
         (fun (b : Mach.mblock) ->
           let tcode =
             Array.of_list
               (List.map
                  (fun i ->
                    (match i.Mach.op with
                    | Mach.Oatomic _ -> has_atomics := true
                    | Mach.Obarrier -> has_barriers := true
                    | _ -> ());
                    decode_instr i)
                  b.Mach.code)
           in
           let tterm =
             match b.Mach.term with
             | Mach.Tbr l -> TTbr (bid l)
             | Mach.Tcbr (c, t, e) -> TTcbr (isrc_of c, bid t, bid e)
             | Mach.Tret -> TTret
           in
           { tcode; tterm })
         f.Mach.blocks)
  in
  (* int-indexed immediate-postdominator table (reconvergence points) *)
  let lab_list = Array.to_list labels in
  let succs l = Mach.successors (List.nth f.Mach.blocks (bid l)).Mach.term in
  let ipdom_s = Uniformity.ipostdoms lab_list succs in
  let ipdom =
    Array.map
      (fun l ->
        match Util.Smap.find_opt l ipdom_s with
        | Some r when r <> "<exit>" -> bid r
        | _ -> -1)
      labels
  in
  {
    tf = f;
    entry = 0;
    blocks;
    labels;
    ipdom;
    has_atomics = !has_atomics;
    has_barriers = !has_barriers;
  }

(* A program may be scheduled across domains when re-ordering its
   thread-blocks cannot change results: atomics serialize through
   global memory with a defined (launch-order) result in the reference
   executor, so they force the serial schedule. *)
let parallel_safe p = not p.has_atomics
