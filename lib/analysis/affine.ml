(* Symbolic affine forms over GPU thread-geometry atoms, the index
   language of the race and bounds checkers. A form is

     const + sum_i coeff_i * (product of atoms)

   where an atom is threadIdx/blockIdx/blockDim/gridDim along an axis,
   or an opaque-but-uniform register [Sym r]. Products let the
   canonical global-id pattern blockIdx*blockDim + threadIdx stay
   exact. Terms containing Tid or Bid atoms are the thread-dependent
   part; everything else is uniform across lanes (per evaluation). *)

type atom =
  | Tid of int (* threadIdx, axis 0..2 *)
  | Bid of int (* blockIdx *)
  | Ntid of int (* blockDim *)
  | Nctaid of int (* gridDim *)
  | Sym of int (* unknown but wave-uniform register *)

let atom_compare = Stdlib.compare

(* term = sorted atom product; invariant: coeffs nonzero, term keys
   sorted and unique. *)
type t = { const : int; terms : (atom list * int) list }

let max_terms = 8
let max_atoms_per_term = 4

let const c = { const = c; terms = [] }
let of_atom a = { const = 0; terms = [ ([ a ], 1) ] }
let is_const t = t.terms = []
let to_const t = if t.terms = [] then Some t.const else None

let norm terms =
  let sorted =
    List.sort (fun (k1, _) (k2, _) -> Stdlib.compare k1 k2) terms
  in
  let rec merge = function
    | (k1, c1) :: (k2, c2) :: rest when k1 = k2 -> merge ((k1, c1 + c2) :: rest)
    | kv :: rest -> kv :: merge rest
    | [] -> []
  in
  List.filter (fun (_, c) -> c <> 0) (merge sorted)

let add a b = { const = a.const + b.const; terms = norm (a.terms @ b.terms) }

let mul_const a c =
  if c = 0 then const 0
  else { const = a.const * c; terms = List.map (fun (k, x) -> (k, x * c)) a.terms }

let neg a = mul_const a (-1)
let sub a b = add a (neg b)

(* Product of two forms; None when the result would exceed the size
   caps (indices that complicated are treated as non-affine). *)
let mul a b =
  let term_mul (k1, c1) (k2, c2) =
    let k = List.sort atom_compare (k1 @ k2) in
    if List.length k > max_atoms_per_term then None else Some (k, c1 * c2)
  in
  let pieces =
    (* (a.const + A)(b.const + B) = a.const*b.const + a.const*B + b.const*A + A*B *)
    List.map (fun (k, c) -> Some (k, c * a.const)) b.terms
    @ List.map (fun (k, c) -> Some (k, c * b.const)) a.terms
    @ List.concat_map (fun ta -> List.map (fun tb -> term_mul ta tb) b.terms) a.terms
  in
  if List.exists (fun p -> p = None) pieces then None
  else
    let terms = norm (List.filter_map (fun p -> p) pieces) in
    if List.length terms > max_terms then None
    else Some { const = a.const * b.const; terms }

let equal a b = a.const = b.const && a.terms = b.terms

let is_thread_term (atoms, _) =
  List.exists (function Tid _ | Bid _ -> true | _ -> false) atoms

(* (thread-dependent part, uniform part); the const belongs to the
   uniform part. *)
let split t =
  let tdep, unif = List.partition is_thread_term t.terms in
  ({ const = 0; terms = tdep }, { const = t.const; terms = unif })

(* Recognized shapes of the thread-dependent part, which decide what
   the race checker can prove about distinct lanes. *)
type shape =
  | Uniform (* no lane dependence: every lane computes the same index *)
  | Gid of { axis : int; stride : int }
      (* stride * (threadIdx.a + blockIdx.a * blockDim.a): injective
         across the whole grid *)
  | Tid_only of { axis : int; stride : int }
      (* stride * threadIdx.a: injective within a block, aliased across
         blocks *)
  | Block_uniform (* depends on blockIdx but not threadIdx *)
  | Other

let shape_of tdep =
  match tdep.terms with
  | [] -> Uniform
  | [ ([ Tid a ], c) ] -> Tid_only { axis = a; stride = c }
  | [ ([ Tid a ], c1 ); ([ Bid a'; Ntid a'' ], c2) ]
  | [ ([ Bid a'; Ntid a'' ], c2); ([ Tid a ], c1) ]
    when a = a' && a = a'' && c1 = c2 ->
      Gid { axis = a; stride = c1 }
  | terms
    when List.for_all
           (fun (atoms, _) ->
             List.for_all (function Tid _ -> false | _ -> true) atoms)
           terms ->
      Block_uniform
  | _ -> Other

(* ------------------------------------------------------------------ *)
(* Interval evaluation                                                 *)

type itv = { lo : int option; hi : int option }

let top = { lo = None; hi = None }
let exactly c = { lo = Some c; hi = Some c }
let range lo hi = { lo; hi }

let add_itv a b =
  let f x y = match (x, y) with Some x, Some y -> Some (x + y) | _ -> None in
  { lo = f a.lo b.lo; hi = f a.hi b.hi }

let scale_itv a c =
  if c = 0 then exactly 0
  else if c > 0 then
    { lo = Option.map (fun x -> x * c) a.lo; hi = Option.map (fun x -> x * c) a.hi }
  else
    { lo = Option.map (fun x -> x * c) a.hi; hi = Option.map (fun x -> x * c) a.lo }

let mul_itv a b =
  match (a, b) with
  | { lo = Some c; hi = Some c' }, other when c = c' -> scale_itv other c
  | other, { lo = Some c; hi = Some c' } when c = c' -> scale_itv other c
  | { lo = Some al; hi = Some ah }, { lo = Some bl; hi = Some bh } ->
      let ps = [ al * bl; al * bh; ah * bl; ah * bh ] in
      range (Some (List.fold_left min max_int ps)) (Some (List.fold_left max min_int ps))
  | _ -> top

let eval (env : atom -> itv) (t : t) : itv =
  List.fold_left
    (fun acc (atoms, c) ->
      let term =
        List.fold_left (fun acc a -> mul_itv acc (env a)) (exactly c) atoms
      in
      add_itv acc term)
    (exactly t.const) t.terms

(* Clamp an interval with a comparison [form OP k] known to hold. *)
let clamp itv (op : Proteus_ir.Ops.cmpop) k =
  let tighter_lo lo v = match lo with Some l when l >= v -> lo | _ -> Some v in
  let tighter_hi hi v = match hi with Some h when h <= v -> hi | _ -> Some v in
  match op with
  | Proteus_ir.Ops.CLt -> { itv with hi = tighter_hi itv.hi (k - 1) }
  | Proteus_ir.Ops.CLe -> { itv with hi = tighter_hi itv.hi k }
  | Proteus_ir.Ops.CGt -> { itv with lo = tighter_lo itv.lo (k + 1) }
  | Proteus_ir.Ops.CGe -> { itv with lo = tighter_lo itv.lo k }
  | Proteus_ir.Ops.CEq -> { lo = tighter_lo itv.lo k; hi = tighter_hi itv.hi k }
  | Proteus_ir.Ops.CNe -> itv

let to_string t =
  let atom_str = function
    | Tid a -> Printf.sprintf "tid.%d" a
    | Bid a -> Printf.sprintf "bid.%d" a
    | Ntid a -> Printf.sprintf "ntid.%d" a
    | Nctaid a -> Printf.sprintf "nctaid.%d" a
    | Sym r -> Printf.sprintf "r%d" r
  in
  let term_str (atoms, c) =
    let p = String.concat "*" (List.map atom_str atoms) in
    if c = 1 then p else Printf.sprintf "%d*%s" c p
  in
  match (t.const, t.terms) with
  | c, [] -> string_of_int c
  | 0, ts -> String.concat " + " (List.map term_str ts)
  | c, ts -> String.concat " + " (List.map term_str ts) ^ " + " ^ string_of_int c
