lib/runtime/costmodel.ml:
