lib/runtime/hostexec.ml: Array Buffer Char Clock Costmodel Gpurt Hashtbl Int64 Interp Ir Konst List Option Printf Proteus_gpu Proteus_ir Proteus_support Scanf String Types Util
