(* Shared analysis normalization: every IR-level analysis (Kernelsan,
   Specadvisor) wants the same view of a module — a clone simplified
   with simplifycfg + mem2reg so scalar locals become registers the
   dataflow and affine machinery can see through, with dbg.loc markers
   preserved for finding provenance.

   Factoring the clone here fixes a subtle disagreement: when two
   analyses each normalized privately, simplifycfg could merge blocks
   in clone-order-dependent ways and the passes would report findings
   against different block ids for the same kernel. Drivers that run
   more than one analysis normalize once with [clone] and hand the
   *same* normalized module to each `*_normalized` entry point, so
   block ids (and register numbering) agree across reports — and the
   simplifycfg+mem2reg work is paid once per kernel instead of once
   per analysis. *)

open Proteus_ir

let clone (m : Ir.modul) : Ir.modul =
  let m = Ir.clone_module m in
  let stats = Proteus_opt.Pass.mk_stats () in
  Proteus_opt.Pass.run_pipeline stats
    [ Proteus_opt.Simplifycfg.pass; Proteus_opt.Mem2reg.pass ]
    m;
  m
