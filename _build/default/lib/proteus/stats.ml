(* Runtime statistics of the Proteus JIT library: cache behaviour,
   compilation overhead (simulated and real), and code-cache sizes. *)

type t = {
  mutable jit_launches : int;
  mutable mem_hits : int;
  mutable disk_hits : int;
  mutable compiles : int;
  mutable jit_overhead_s : float; (* simulated seconds spent off the critical kernel path *)
  mutable compile_work : int; (* optimizer work units *)
  mutable bitcode_bytes : int;
  mutable object_bytes : int;
  mutable real_compile_s : float; (* actual wall-clock of our pipeline *)
}

let create () =
  {
    jit_launches = 0; mem_hits = 0; disk_hits = 0; compiles = 0; jit_overhead_s = 0.0;
    compile_work = 0; bitcode_bytes = 0; object_bytes = 0; real_compile_s = 0.0;
  }

let to_string s =
  Printf.sprintf
    "jit launches=%d mem-hits=%d disk-hits=%d compiles=%d overhead=%.3fms real-compile=%.1fms"
    s.jit_launches s.mem_hits s.disk_hits s.compiles (s.jit_overhead_s *. 1e3)
    (s.real_compile_s *. 1e3)
