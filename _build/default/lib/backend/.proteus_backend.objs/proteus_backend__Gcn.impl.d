lib/backend/gcn.ml: Ir Isel List Mach Proteus_ir Regalloc Types
