(* Tests for the IR: types, constants, construction, verifier, bitcode,
   CFG analyses (dominators, loops) and the reference interpreter. *)

open Proteus_support
open Proteus_ir

let check = Alcotest.check
let qtest = Qseed.qtest

(* ------------------------------------------------------------------ *)
(* Types *)

let test_type_sizes () =
  check Alcotest.int "i32" 4 (Types.size_of Types.i32);
  check Alcotest.int "i64" 8 (Types.size_of Types.i64);
  check Alcotest.int "f32" 4 (Types.size_of Types.f32);
  check Alcotest.int "f64" 8 (Types.size_of Types.f64);
  check Alcotest.int "ptr" 8 (Types.size_of (Types.ptr Types.f64));
  check Alcotest.int "bool" 1 (Types.size_of Types.TBool);
  check Alcotest.int "array" 32 (Types.size_of (Types.TArr (Types.f64, 4)))

let test_type_equal () =
  Alcotest.(check bool) "ptr eq" true
    (Types.equal (Types.ptr Types.f32) (Types.ptr Types.f32));
  Alcotest.(check bool) "ptr ne pointee" false
    (Types.equal (Types.ptr Types.f32) (Types.ptr Types.f64));
  Alcotest.(check bool) "space matters" false
    (Types.equal (Types.ptr ~space:Types.AS_shared Types.f32) (Types.ptr Types.f32))

let test_type_roundtrip () =
  List.iter
    (fun t ->
      let w = Util.Bytesio.W.create () in
      Types.encode w t;
      let r = Util.Bytesio.R.create (Util.Bytesio.W.contents w) in
      Alcotest.(check bool) (Types.to_string t) true (Types.equal t (Types.decode r)))
    [ Types.TVoid; Types.TBool; Types.i32; Types.i64; Types.f32; Types.f64;
      Types.ptr Types.f64; Types.TArr (Types.TInt 8, 17);
      Types.TPtr (Types.TPtr (Types.i32, Types.AS_global), Types.AS_scratch) ]

(* ------------------------------------------------------------------ *)
(* Constants *)

let test_konst_int_norm () =
  match Konst.kint ~bits:32 0xFFFFFFFFL with
  | Konst.KInt (v, 32) -> check Alcotest.int64 "wraps to -1" (-1L) v
  | _ -> Alcotest.fail "expected KInt"

let test_konst_binops () =
  let i32 v = Konst.kint ~bits:32 v in
  check Alcotest.int64 "add wraps" (Int64.of_int32 (Int32.add Int32.max_int 1l))
    (Konst.as_int (Konst.binop Ops.Add (i32 (Int64.of_int32 Int32.max_int)) (i32 1L)));
  check Alcotest.int64 "sdiv by zero is 0 (GPU semantics)" 0L
    (Konst.as_int (Konst.binop Ops.SDiv (i32 5L) (i32 0L)));
  check Alcotest.int64 "srem" 2L (Konst.as_int (Konst.binop Ops.SRem (i32 17L) (i32 5L)));
  check Alcotest.int64 "shl masks shift amount" 2L
    (Konst.as_int (Konst.binop Ops.Shl (i32 1L) (i32 33L)));
  check Alcotest.int64 "lshr is unsigned" 0x7FFFFFFFL
    (Konst.as_int (Konst.binop Ops.LShr (i32 (-1L)) (i32 1L)));
  check Alcotest.int64 "ashr is signed" (-1L)
    (Konst.as_int (Konst.binop Ops.AShr (i32 (-1L)) (i32 1L)))

let test_konst_float_f32_rounds () =
  let a = Konst.kf32 0.1 and b = Konst.kf32 0.2 in
  match Konst.binop Ops.FAdd a b with
  | Konst.KFloat (v, 32) ->
      Alcotest.(check bool) "result is f32-rounded" true (v = Util.to_f32 v)
  | _ -> Alcotest.fail "expected f32"

let test_konst_cmp () =
  Alcotest.(check bool) "slt" true
    (Konst.as_bool (Konst.cmpop Ops.CLt (Konst.ki32 (-3)) (Konst.ki32 2)));
  Alcotest.(check bool) "float eq" false
    (Konst.as_bool (Konst.cmpop Ops.CEq (Konst.kf64 0.1) (Konst.kf64 0.2)))

let test_konst_cast () =
  check Alcotest.int64 "trunc i64->i32" (-1L)
    (Konst.as_int (Konst.cast Ops.Trunc (Konst.kint ~bits:64 0xFFFFFFFFL) Types.i32));
  check Alcotest.int64 "fptosi" 3L
    (Konst.as_int (Konst.cast Ops.FpToSi (Konst.kf64 3.7) Types.i64));
  (match Konst.cast Ops.SiToFp (Konst.ki32 7) Types.f32 with
  | Konst.KFloat (7.0, 32) -> ()
  | k -> Alcotest.failf "sitofp got %s" (Konst.to_string k));
  check Alcotest.int64 "zext i32->i64 (unsigned)" 0xFFFFFFFFL
    (Konst.as_int (Konst.cast Ops.Zext (Konst.kint ~bits:32 (-1L)) Types.i64));
  check Alcotest.int64 "sext i32->i64 (signed)" (-1L)
    (Konst.as_int (Konst.cast Ops.Sext (Konst.kint ~bits:32 (-1L)) Types.i64))

let qcheck_konst_add_matches_int32 =
  QCheck.Test.make ~name:"i32 add matches Int32 semantics" ~count:500
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let k =
        Konst.binop Ops.Add
          (Konst.kint ~bits:32 (Int64.of_int32 a))
          (Konst.kint ~bits:32 (Int64.of_int32 b))
      in
      Int64.equal (Konst.as_int k) (Int64.of_int32 (Int32.add a b)))

let qcheck_konst_mul_matches_int32 =
  QCheck.Test.make ~name:"i32 mul matches Int32 semantics" ~count:500
    QCheck.(pair int32 int32)
    (fun (a, b) ->
      let k =
        Konst.binop Ops.Mul
          (Konst.kint ~bits:32 (Int64.of_int32 a))
          (Konst.kint ~bits:32 (Int64.of_int32 b))
      in
      Int64.equal (Konst.as_int k) (Int64.of_int32 (Int32.mul a b)))

let qcheck_konst_roundtrip =
  let gen =
    QCheck.oneof
      [
        QCheck.map (fun b -> Konst.kbool b) QCheck.bool;
        QCheck.map (fun v -> Konst.kint ~bits:32 (Int64.of_int32 v)) QCheck.int32;
        QCheck.map (fun v -> Konst.kint ~bits:64 v) QCheck.int64;
        QCheck.map (fun v -> Konst.kf64 v) QCheck.float;
      ]
  in
  QCheck.Test.make ~name:"konst encode/decode roundtrip" ~count:300 gen (fun k ->
      let w = Util.Bytesio.W.create () in
      Konst.encode w k;
      let r = Util.Bytesio.R.create (Util.Bytesio.W.contents w) in
      Konst.equal k (Konst.decode r))

(* ------------------------------------------------------------------ *)
(* Module construction helpers *)

let build_abs_add () =
  let f =
    Ir.create_func ~kind:Ir.Device "abs_add"
      [ ("x", Types.i32); ("y", Types.i32) ]
      Types.i32
  in
  let b = Builder.create f in
  let x = Ir.Reg (snd (List.nth f.Ir.params 0)) in
  let y = Ir.Reg (snd (List.nth f.Ir.params 1)) in
  let neg = Builder.new_block b "neg" in
  let join = Builder.new_block b "join" in
  let c = Builder.cmp b Ops.CLt x (Ir.Imm (Konst.ki32 0)) in
  Builder.cond_br b c neg.Ir.label join.Ir.label;
  Builder.position_at b neg;
  let nx = Builder.bin b Ops.Sub Types.i32 (Ir.Imm (Konst.ki32 0)) x in
  Builder.br b join.Ir.label;
  Builder.position_at b join;
  let phi = Builder.phi b Types.i32 [ ("entry", x); ("neg", nx) ] in
  let r = Builder.bin b Ops.Add Types.i32 phi y in
  Builder.ret b (Some r);
  f

let module_with fs =
  { Ir.mid = "test"; mname = "test"; mtarget = Ir.TDevice; globals = []; funcs = fs;
    annotations = []; ctors = []; mgen = 0 }

let null_env () =
  Interp.make_env
    ~load:(fun _ _ -> Alcotest.fail "no memory in this test")
    ~store:(fun _ _ _ -> Alcotest.fail "no memory in this test")
    ~extern:(fun n _ -> Alcotest.failf "unexpected extern %s" n)
    ~global_addr:(fun n -> Alcotest.failf "unexpected global %s" n)
    ~alloca:(fun _ _ -> Alcotest.fail "no alloca in this test")
    ()

let test_build_and_interp () =
  let f = build_abs_add () in
  let m = module_with [ f ] in
  Verify.verify_module m;
  let run x y =
    match Interp.run (null_env ()) m "abs_add" [ Konst.ki32 x; Konst.ki32 y ] with
    | Some k -> Int64.to_int (Konst.as_int k)
    | None -> Alcotest.fail "no result"
  in
  check Alcotest.int "abs(-5)+3" 8 (run (-5) 3);
  check Alcotest.int "abs(4)+1" 5 (run 4 1)

let qcheck_abs_add =
  let f = build_abs_add () in
  let m = module_with [ f ] in
  QCheck.Test.make ~name:"abs_add agrees with spec" ~count:200
    QCheck.(pair (int_range (-10000) 10000) (int_range (-10000) 10000))
    (fun (x, y) ->
      match Interp.run (null_env ()) m "abs_add" [ Konst.ki32 x; Konst.ki32 y ] with
      | Some k -> Int64.to_int (Konst.as_int k) = abs x + y
      | None -> false)

let test_use_counts_and_replace () =
  let f = build_abs_add () in
  let x_reg = snd (List.nth f.Ir.params 0) in
  let uses = Ir.use_counts f in
  check Alcotest.int "x used 3 times" 3 uses.(x_reg);
  Ir.replace_uses f x_reg (Ir.Imm (Konst.ki32 7));
  let uses' = Ir.use_counts f in
  check Alcotest.int "x uses gone" 0 uses'.(x_reg)

let test_clone_independent () =
  let f = build_abs_add () in
  let g = Ir.clone_func f in
  (Ir.entry g).Ir.insts <- [];
  Alcotest.(check bool) "original keeps instructions" true
    ((Ir.entry f).Ir.insts <> [])

(* ------------------------------------------------------------------ *)
(* Verifier *)

let expect_invalid name f =
  let m = module_with [ f ] in
  match Verify.check m with
  | Error _ -> ()
  | Ok () -> Alcotest.failf "%s: verifier accepted invalid IR" name

let test_verify_undefined_reg () =
  let f = Ir.create_func "bad" [] Types.i32 in
  let b = Builder.create f in
  let bogus = Ir.fresh_reg f Types.i32 in
  Builder.ret b (Some (Ir.Reg bogus));
  expect_invalid "undefined reg" f

let test_verify_type_mismatch () =
  let f = Ir.create_func "bad" [ ("x", Types.f64) ] Types.f64 in
  let b = Builder.create f in
  let x = Ir.Reg (snd (List.hd f.Ir.params)) in
  let d = Ir.fresh_reg f Types.f64 in
  Builder.add_instr b (Ir.IBin (d, Ops.Add, x, x));
  Builder.ret b (Some (Ir.Reg d));
  expect_invalid "int op on float" f

let test_verify_bad_branch () =
  let f = Ir.create_func "bad" [] Types.TVoid in
  let b = Builder.create f in
  Builder.br b "nowhere";
  expect_invalid "branch to unknown label" f

let test_verify_ret_type () =
  let f = Ir.create_func "bad" [] Types.i32 in
  let b = Builder.create f in
  Builder.ret b (Some (Ir.Imm (Konst.kf64 1.0)));
  expect_invalid "wrong return type" f

let test_verify_double_def () =
  let f = Ir.create_func "bad" [] Types.TVoid in
  let b = Builder.create f in
  let d = Ir.fresh_reg f Types.i32 in
  Builder.add_instr b (Ir.IBin (d, Ops.Add, Ir.Imm (Konst.ki32 1), Ir.Imm (Konst.ki32 2)));
  Builder.add_instr b (Ir.IBin (d, Ops.Add, Ir.Imm (Konst.ki32 3), Ir.Imm (Konst.ki32 4)));
  Builder.ret b None;
  expect_invalid "register defined twice" f

let test_verify_phi_after_nonphi () =
  let f = Ir.create_func "bad" [] Types.TVoid in
  let b = Builder.create f in
  let d = Ir.fresh_reg f Types.i32 in
  Builder.add_instr b (Ir.IBin (d, Ops.Add, Ir.Imm (Konst.ki32 1), Ir.Imm (Konst.ki32 2)));
  let p = Ir.fresh_reg f Types.i32 in
  Builder.add_instr b (Ir.IPhi (p, [ ("entry", Ir.Imm (Konst.ki32 0)) ]));
  Builder.ret b None;
  expect_invalid "phi after non-phi" f

(* ---- phi / dominance invariants over a diamond CFG ----

   entry -(x<0)-> t | e, both to join; [mk_join] builds the join block
   given the two branch values so each test can plant a different phi
   (or none) at the merge. *)
let build_diamond mk_join =
  let f = Ir.create_func "dia" [ ("x", Types.i32) ] Types.i32 in
  let b = Builder.create f in
  let x = Ir.Reg (snd (List.hd f.Ir.params)) in
  let t = Builder.new_block b "t" in
  let e = Builder.new_block b "e" in
  let j = Builder.new_block b "join" in
  let c = Builder.cmp b Ops.CLt x (Ir.Imm (Konst.ki32 0)) in
  Builder.cond_br b c t.Ir.label e.Ir.label;
  Builder.position_at b t;
  let tv = Builder.bin b Ops.Add Types.i32 x (Ir.Imm (Konst.ki32 1)) in
  Builder.br b j.Ir.label;
  Builder.position_at b e;
  let ev = Builder.bin b Ops.Add Types.i32 x (Ir.Imm (Konst.ki32 2)) in
  Builder.br b j.Ir.label;
  Builder.position_at b j;
  mk_join b tv ev;
  f

let test_verify_phi_good_diamond () =
  let f =
    build_diamond (fun b tv ev ->
        let p = Builder.phi b Types.i32 [ ("t", tv); ("e", ev) ] in
        Builder.ret b (Some p))
  in
  match Verify.check (module_with [ f ]) with
  | Ok () -> ()
  | Error msgs -> Alcotest.failf "good diamond rejected: %s" (String.concat "; " msgs)

let test_verify_phi_missing_incoming () =
  let f =
    build_diamond (fun b tv _ ->
        let p = Builder.phi b Types.i32 [ ("t", tv) ] in
        Builder.ret b (Some p))
  in
  expect_invalid "phi missing an incoming for predecessor e" f

let test_verify_phi_duplicate_incoming () =
  let f =
    build_diamond (fun b tv ev ->
        let p = Builder.phi b Types.i32 [ ("t", tv); ("t", tv); ("e", ev) ] in
        Builder.ret b (Some p))
  in
  expect_invalid "phi with duplicate incoming labels" f

let test_verify_phi_nonpred_incoming () =
  let f =
    build_diamond (fun b tv ev ->
        let p =
          Builder.phi b Types.i32
            [ ("t", tv); ("e", ev); ("entry", Ir.Imm (Konst.ki32 0)) ]
        in
        Builder.ret b (Some p))
  in
  expect_invalid "phi incoming from non-predecessor" f

let test_verify_phi_value_edge_dominance () =
  (* the e-defined value is not available at the end of the t->join
     edge; a phi may only draw values that dominate their edge *)
  let f =
    build_diamond (fun b _ ev ->
        let p = Builder.phi b Types.i32 [ ("t", ev); ("e", ev) ] in
        Builder.ret b (Some p))
  in
  expect_invalid "phi value must dominate its incoming edge" f

let test_verify_branch_def_no_dominance () =
  (* using a branch-local value at the join without a phi *)
  let f = build_diamond (fun b tv _ -> Builder.ret b (Some tv)) in
  expect_invalid "use at join not dominated by branch-local def" f

let test_verify_accepts_good () =
  let m = module_with [ build_abs_add () ] in
  match Verify.check m with
  | Ok () -> ()
  | Error errs -> Alcotest.failf "unexpected: %s" (String.concat "; " errs)

(* ------------------------------------------------------------------ *)
(* Bitcode *)

let test_bitcode_roundtrip () =
  let m = module_with [ build_abs_add () ] in
  m.Ir.globals <-
    [
      { Ir.gname = "table"; gty = Types.TArr (Types.f64, 4); gspace = Types.AS_global;
        ginit = Ir.InitConsts [ Konst.kf64 1.0; Konst.kf64 2.0 ]; gconst = false;
        gextern = false };
      { Ir.gname = "msg"; gty = Types.TArr (Types.TInt 8, 6); gspace = Types.AS_global;
        ginit = Ir.InitString "hello"; gconst = true; gextern = false };
    ];
  m.Ir.annotations <- [ { Ir.afunc = "abs_add"; akey = "jit"; aargs = [ 1; 2 ] } ];
  let bytes = Bitcode.encode_module m in
  let m' = Bitcode.decode_module bytes in
  check Alcotest.string "mid" m.Ir.mid m'.Ir.mid;
  check Alcotest.int "globals" 2 (List.length m'.Ir.globals);
  check Alcotest.int "funcs" 1 (List.length m'.Ir.funcs);
  check Alcotest.(list int) "annotation args" [ 1; 2 ]
    (List.hd m'.Ir.annotations).Ir.aargs;
  Verify.verify_module m';
  match Interp.run (null_env ()) m' "abs_add" [ Konst.ki32 (-9); Konst.ki32 1 ] with
  | Some k -> check Alcotest.int64 "semantics preserved" 10L (Konst.as_int k)
  | None -> Alcotest.fail "no result"

let test_bitcode_bad_magic () =
  Alcotest.check_raises "bad magic" (Failure "Bitcode.decode_module: bad magic")
    (fun () -> ignore (Bitcode.decode_module "garbage data here"))

(* ------------------------------------------------------------------ *)
(* CFG / dominators / loops *)

let build_diamond () =
  let f = Ir.create_func "diamond" [ ("c", Types.TBool) ] Types.TVoid in
  let b = Builder.create f in
  let l = Builder.new_block b "l" in
  let r = Builder.new_block b "r" in
  let j = Builder.new_block b "j" in
  Builder.cond_br b (Ir.Reg (snd (List.hd f.Ir.params))) l.Ir.label r.Ir.label;
  Builder.position_at b l;
  Builder.br b j.Ir.label;
  Builder.position_at b r;
  Builder.br b j.Ir.label;
  Builder.position_at b j;
  Builder.ret b None;
  f

let test_cfg_diamond () =
  let f = build_diamond () in
  let cfg = Cfg.build f in
  check Alcotest.(slist string compare) "entry succs" [ "l"; "r" ] (Cfg.succs cfg "entry");
  check Alcotest.(slist string compare) "join preds" [ "l"; "r" ] (Cfg.preds cfg "j");
  check Alcotest.int "all reachable" 4 (List.length cfg.Cfg.rpo)

let test_dom_diamond () =
  let f = build_diamond () in
  let dom = Dom.compute (Cfg.build f) in
  check Alcotest.(option string) "idom(l)" (Some "entry") (Dom.idom dom "l");
  check Alcotest.(option string) "idom(j)" (Some "entry") (Dom.idom dom "j");
  Alcotest.(check bool) "entry dominates j" true (Dom.dominates dom "entry" "j");
  Alcotest.(check bool) "l does not dominate j" false (Dom.dominates dom "l" "j");
  Alcotest.(check bool) "j in DF(l)" true (Util.Sset.mem "j" (Dom.frontier dom "l"))

let build_loop () =
  let f = Ir.create_func "looper" [ ("n", Types.i32) ] Types.i32 in
  let b = Builder.create f in
  let header = Builder.new_block b "header" in
  let body = Builder.new_block b "body" in
  let exit_ = Builder.new_block b "exit" in
  Builder.br b header.Ir.label;
  Builder.position_at b header;
  let i = Ir.fresh_reg f Types.i32 in
  let acc = Ir.fresh_reg f Types.i32 in
  let c = Builder.cmp b Ops.CLt (Ir.Reg i) (Ir.Reg (snd (List.hd f.Ir.params))) in
  Builder.cond_br b c body.Ir.label exit_.Ir.label;
  Builder.position_at b body;
  let acc' = Builder.bin b Ops.Add Types.i32 (Ir.Reg acc) (Ir.Reg i) in
  let i' = Builder.bin b Ops.Add Types.i32 (Ir.Reg i) (Ir.Imm (Konst.ki32 1)) in
  Builder.br b header.Ir.label;
  header.Ir.insts <-
    Ir.IPhi (i, [ ("entry", Ir.Imm (Konst.ki32 0)); ("body", i') ])
    :: Ir.IPhi (acc, [ ("entry", Ir.Imm (Konst.ki32 0)); ("body", acc') ])
    :: header.Ir.insts;
  Builder.position_at b exit_;
  Builder.ret b (Some (Ir.Reg acc));
  f

let test_loopinfo () =
  let f = build_loop () in
  Verify.verify_module (module_with [ f ]);
  let cfg = Cfg.build f in
  let dom = Dom.compute cfg in
  let li = Loopinfo.compute cfg dom in
  check Alcotest.int "one loop" 1 (List.length li.Loopinfo.loops);
  let l = List.hd li.Loopinfo.loops in
  check Alcotest.string "header" "header" l.Loopinfo.header;
  check Alcotest.(list string) "latch" [ "body" ] l.Loopinfo.latches;
  check Alcotest.int "depth" 1 l.Loopinfo.depth;
  check Alcotest.(slist string compare) "exiting" [ "header" ]
    (Loopinfo.exiting_blocks cfg l)

let test_loop_interp () =
  let f = build_loop () in
  let m = module_with [ f ] in
  match Interp.run (null_env ()) m "looper" [ Konst.ki32 10 ] with
  | Some k -> check Alcotest.int64 "sum 0..9" 45L (Konst.as_int k)
  | None -> Alcotest.fail "no result"

let test_remove_unreachable () =
  let f = build_diamond () in
  let dead = Ir.add_block f "dead" in
  dead.Ir.term <- Ir.TBr "j";
  Alcotest.(check bool) "removed something" true (Cfg.remove_unreachable f);
  check Alcotest.int "back to 4 blocks" 4 (List.length f.Ir.blocks)

let test_interp_fuel () =
  let f = Ir.create_func "spin" [] Types.TVoid in
  let b = Builder.create f in
  let loop = Builder.new_block b "loop" in
  Builder.br b loop.Ir.label;
  Builder.position_at b loop;
  let d = Ir.fresh_reg f Types.i32 in
  Builder.add_instr b (Ir.IBin (d, Ops.Add, Ir.Imm (Konst.ki32 1), Ir.Imm (Konst.ki32 1)));
  Builder.br b loop.Ir.label;
  (* note: d redefined each iteration is fine for the interpreter, but
     we only care about fuel here; keep the verifier out of it *)
  let m = module_with [ f ] in
  let env =
    Interp.make_env ~fuel:1000
      ~load:(fun _ _ -> Konst.ki32 0)
      ~store:(fun _ _ _ -> ())
      ~extern:(fun _ _ -> None)
      ~global_addr:(fun _ -> 0L)
      ~alloca:(fun _ _ -> 0L)
      ()
  in
  Alcotest.check_raises "out of fuel" Interp.Out_of_fuel (fun () ->
      ignore (Interp.run env m "spin" []))

let () =
  Alcotest.run "ir"
    [
      ( "types",
        [
          Alcotest.test_case "sizes" `Quick test_type_sizes;
          Alcotest.test_case "equality" `Quick test_type_equal;
          Alcotest.test_case "encode/decode" `Quick test_type_roundtrip;
        ] );
      ( "konst",
        [
          Alcotest.test_case "i32 normalisation" `Quick test_konst_int_norm;
          Alcotest.test_case "binops" `Quick test_konst_binops;
          Alcotest.test_case "f32 rounding" `Quick test_konst_float_f32_rounds;
          Alcotest.test_case "comparisons" `Quick test_konst_cmp;
          Alcotest.test_case "casts" `Quick test_konst_cast;
          qtest qcheck_konst_add_matches_int32;
          qtest qcheck_konst_mul_matches_int32;
          qtest qcheck_konst_roundtrip;
        ] );
      ( "construction",
        [
          Alcotest.test_case "build + interpret" `Quick test_build_and_interp;
          Alcotest.test_case "use counts / replace" `Quick test_use_counts_and_replace;
          Alcotest.test_case "clone independence" `Quick test_clone_independent;
          qtest qcheck_abs_add;
        ] );
      ( "verifier",
        [
          Alcotest.test_case "accepts valid IR" `Quick test_verify_accepts_good;
          Alcotest.test_case "undefined register" `Quick test_verify_undefined_reg;
          Alcotest.test_case "type mismatch" `Quick test_verify_type_mismatch;
          Alcotest.test_case "bad branch target" `Quick test_verify_bad_branch;
          Alcotest.test_case "wrong return type" `Quick test_verify_ret_type;
          Alcotest.test_case "double definition" `Quick test_verify_double_def;
          Alcotest.test_case "phi placement" `Quick test_verify_phi_after_nonphi;
          Alcotest.test_case "phi: clean diamond accepted" `Quick
            test_verify_phi_good_diamond;
          Alcotest.test_case "phi: missing incoming" `Quick
            test_verify_phi_missing_incoming;
          Alcotest.test_case "phi: duplicate incoming" `Quick
            test_verify_phi_duplicate_incoming;
          Alcotest.test_case "phi: non-predecessor incoming" `Quick
            test_verify_phi_nonpred_incoming;
          Alcotest.test_case "phi: value must dominate its edge" `Quick
            test_verify_phi_value_edge_dominance;
          Alcotest.test_case "dominance: branch-local use at join" `Quick
            test_verify_branch_def_no_dominance;
        ] );
      ( "bitcode",
        [
          Alcotest.test_case "module roundtrip" `Quick test_bitcode_roundtrip;
          Alcotest.test_case "bad magic" `Quick test_bitcode_bad_magic;
        ] );
      ( "analyses",
        [
          Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
          Alcotest.test_case "dominators" `Quick test_dom_diamond;
          Alcotest.test_case "loop info" `Quick test_loopinfo;
          Alcotest.test_case "loop semantics" `Quick test_loop_interp;
          Alcotest.test_case "unreachable removal" `Quick test_remove_unreachable;
          Alcotest.test_case "interpreter fuel" `Quick test_interp_fuel;
        ] );
    ]
