(* Semantic analysis and lowering of Kernel-C to IR, performing the
   split compilation of Figure 1: one call lowers the device side
   (kernels, device functions, device globals, jit annotations) and
   another the host side (host functions, kernel launch stubs, a
   registration constructor mirroring __cudaRegisterVar/Function). *)

open Proteus_support
open Proteus_ir
open Ast

type vendor = Cuda | Hip

let vendor_to_string = function Cuda -> "cuda" | Hip -> "hip"

(* Vendor-neutral source API names normalised to the target vendor,
   mirroring what hipify does for real codes. *)
let vendor_api vendor name =
  let strip n =
    let for_prefix p =
      if String.length n > String.length p && String.sub n 0 (String.length p) = p then
        Some (String.sub n (String.length p) (String.length n - String.length p))
      else None
    in
    match for_prefix "cuda" with Some r -> Some r | None -> for_prefix "hip"
  in
  match strip name with
  | Some rest ->
      Some ((match vendor with Cuda -> "cuda" | Hip -> "hip") ^ rest)
  | None -> None

let api_base name =
  (* "cudaMalloc" / "hipMalloc" -> Some "Malloc" *)
  let pre p =
    if String.length name > String.length p && String.sub name 0 (String.length p) = p
    then Some (String.sub name (String.length p) (String.length name - String.length p))
    else None
  in
  match pre "cuda" with Some r -> Some r | None -> pre "hip"

(* ------------------------------------------------------------------ *)
(* C-type to IR-type mapping                                           *)

let rec ir_ty = function
  | Cvoid -> Types.TVoid
  | Cbool -> Types.TBool
  | Cint -> Types.i32
  | Clong -> Types.i64
  | Cfloat -> Types.f32
  | Cdouble -> Types.f64
  | Cptr t -> Types.TPtr (ir_ty_elem t, Types.AS_global)
  | Carr (t, n) -> Types.TArr (ir_ty t, n)

and ir_ty_elem = function Cvoid -> Types.TInt 8 | t -> ir_ty t

let rec decay = function Carr (t, _) -> Cptr t | Cptr t -> Cptr (decay t) | t -> t

let is_arith = function
  | Cbool | Cint | Clong | Cfloat | Cdouble -> true
  | Cvoid | Cptr _ | Carr _ -> false

let is_integer = function Cbool | Cint | Clong -> true | _ -> false
let is_floating = function Cfloat | Cdouble -> true | _ -> false
let is_pointer = function Cptr _ -> true | _ -> false

let rank = function
  | Cbool -> 0
  | Cint -> 1
  | Clong -> 2
  | Cfloat -> 3
  | Cdouble -> 4
  | _ -> -1

let promote a b = if rank a >= rank b then a else b

(* ------------------------------------------------------------------ *)
(* Environments                                                        *)

type var = { vty : cty; vptr : Ir.operand (* address of the slot *) }

type fsig = { sret : cty; sparams : cty list; skind : funkind }

type genv = {
  vendor : vendor;
  side : funkind; (* Fglobal => device side, Fhost => host side *)
  debug : bool; (* emit dbg.loc source markers for the analyses *)
  mutable funcs : fsig Util.Smap.t;
  mutable globals : (cty * funkind) Util.Smap.t;
  mutable kernels : fundef Util.Smap.t; (* by name; for launch checking *)
  modul : Ir.modul;
  mutable strings : (string * string) list; (* literal -> global name *)
  mutable nstr : int;
}

type loopctx = { break_to : string; continue_to : string }

type fenv = {
  g : genv;
  func : Ir.func;
  b : Builder.t;
  mutable vars : var Util.Smap.t list; (* scope stack *)
  mutable loops : loopctx list;
  fret : cty;
}

let lookup_var fe name =
  let rec go = function
    | [] -> None
    | scope :: rest -> (
        match Util.Smap.find_opt name scope with Some v -> Some v | None -> go rest)
  in
  go fe.vars

let declare_var fe pos name v =
  match fe.vars with
  | scope :: rest ->
      if Util.Smap.mem name scope then error pos "redeclaration of %s" name;
      fe.vars <- Util.Smap.add name v scope :: rest
  | [] -> error pos "no scope"

let push_scope fe = fe.vars <- Util.Smap.empty :: fe.vars
let pop_scope fe = fe.vars <- List.tl fe.vars

(* Interned string literal global. *)
let string_global g s =
  match List.assoc_opt s g.strings with
  | Some n -> n
  | None ->
      let n = Printf.sprintf ".str.%d" g.nstr in
      g.nstr <- g.nstr + 1;
      g.strings <- (s, n) :: g.strings;
      g.modul.Ir.globals <-
        g.modul.Ir.globals
        @ [
            {
              Ir.gname = n;
              gty = Types.TArr (Types.TInt 8, String.length s + 1);
              gspace = Types.AS_global;
              ginit = Ir.InitString s;
              gconst = true;
              gextern = false;
            };
          ];
      n

(* ------------------------------------------------------------------ *)
(* Conversions                                                         *)

let coerce fe pos (op, ty) target =
  if ty = target then op
  else
    match (ty, target) with
    | _, Cvoid -> op
    | Cbool, (Cint | Clong) -> Builder.cast fe.b Ops.Zext op (ir_ty target)
    | Cint, Clong -> Builder.cast fe.b Ops.Sext op (ir_ty target)
    | Clong, Cint -> Builder.cast fe.b Ops.Trunc op (ir_ty target)
    | (Cint | Clong), Cbool ->
        Builder.cmp fe.b Ops.CNe op (Ir.Imm (Konst.kint ~bits:(if ty = Cint then 32 else 64) 0L))
    | (Cbool | Cint | Clong), (Cfloat | Cdouble) ->
        let iop =
          if ty = Cbool then Builder.cast fe.b Ops.Zext op Types.i32 else op
        in
        Builder.cast fe.b Ops.SiToFp iop (ir_ty target)
    | (Cfloat | Cdouble), (Cint | Clong) -> Builder.cast fe.b Ops.FpToSi op (ir_ty target)
    | (Cfloat | Cdouble), Cbool ->
        Builder.cmp fe.b Ops.CNe op (Ir.Imm (Konst.KFloat (0.0, if ty = Cfloat then 32 else 64)))
    | Cfloat, Cdouble -> Builder.cast fe.b Ops.FpExt op (ir_ty target)
    | Cdouble, Cfloat -> Builder.cast fe.b Ops.FpTrunc op (ir_ty target)
    | Cptr _, Cptr _ -> Builder.cast fe.b Ops.Bitcast op (ir_ty target)
    | Cptr _, Cbool -> Builder.cmp fe.b Ops.CNe op (Ir.Imm (Konst.kint ~bits:64 0L))
    | _ -> error pos "cannot convert %s to %s" (cty_to_string ty) (cty_to_string target)

let to_bool fe pos (op, ty) =
  match ty with
  | Cbool -> op
  | Cint | Clong | Cfloat | Cdouble | Cptr _ -> coerce fe pos (op, ty) Cbool
  | _ -> error pos "%s is not a condition type" (cty_to_string ty)

(* ------------------------------------------------------------------ *)
(* Builtin device functions                                            *)

let member_builtin obj m =
  let axis = match m with "x" -> Some "x" | "y" -> Some "y" | "z" -> Some "z" | _ -> None in
  match (obj, axis) with
  | "threadIdx", Some a -> Some ("gpu.tid." ^ a)
  | "blockIdx", Some a -> Some ("gpu.ctaid." ^ a)
  | "blockDim", Some a -> Some ("gpu.ntid." ^ a)
  | "gridDim", Some a -> Some ("gpu.nctaid." ^ a)
  | _ -> None

(* Math builtins: name -> (intrinsic base, arity, f32?) *)
let math_builtin name =
  let tbl =
    [ ("sqrtf", ("math.sqrt", 1, Cfloat)); ("sqrt", ("math.sqrt", 1, Cdouble));
      ("rsqrtf", ("math.rsqrt", 1, Cfloat)); ("rsqrt", ("math.rsqrt", 1, Cdouble));
      ("expf", ("math.exp", 1, Cfloat)); ("exp", ("math.exp", 1, Cdouble));
      ("logf", ("math.log", 1, Cfloat)); ("log", ("math.log", 1, Cdouble));
      ("sinf", ("math.sin", 1, Cfloat)); ("sin", ("math.sin", 1, Cdouble));
      ("cosf", ("math.cos", 1, Cfloat)); ("cos", ("math.cos", 1, Cdouble));
      ("fabsf", ("math.fabs", 1, Cfloat)); ("fabs", ("math.fabs", 1, Cdouble));
      ("floorf", ("math.floor", 1, Cfloat)); ("floor", ("math.floor", 1, Cdouble));
      ("ceilf", ("math.ceil", 1, Cfloat)); ("ceil", ("math.ceil", 1, Cdouble));
      ("tanhf", ("math.tanh", 1, Cfloat)); ("tanh", ("math.tanh", 1, Cdouble));
      ("powf", ("math.pow", 2, Cfloat)); ("pow", ("math.pow", 2, Cdouble));
      ("atan2f", ("math.atan2", 2, Cfloat)); ("atan2", ("math.atan2", 2, Cdouble));
      ("fmaf", ("math.fma", 3, Cfloat)); ("fma", ("math.fma", 3, Cdouble)) ]
  in
  List.assoc_opt name tbl

(* ------------------------------------------------------------------ *)
(* Expression lowering                                                 *)

let rec lower_expr fe (e : expr) : Ir.operand * cty =
  match e.desc with
  | Eint (v, false) -> (Ir.Imm (Konst.kint ~bits:32 v), Cint)
  | Eint (v, true) -> (Ir.Imm (Konst.kint ~bits:64 v), Clong)
  | Efloat (v, false) -> (Ir.Imm (Konst.kf32 v), Cfloat)
  | Efloat (v, true) -> (Ir.Imm (Konst.kf64 v), Cdouble)
  | Ebool v -> (Ir.Imm (Konst.kbool v), Cbool)
  | Estr s -> (Ir.Glob (string_global fe.g s), Cptr Cint)
  | Eid _ | Eindex _ | Ederef _ -> (
      (* rvalue use of an lvalue *)
      match lower_lvalue fe e with
      | ptr, Carr (t, _) ->
          (* array decays to pointer to first element *)
          (coerce fe e.epos (ptr, Cptr t) (Cptr t), Cptr t)
      | ptr, ty -> (Builder.load fe.b (ir_ty ty) ptr, ty))
  | Emember ({ desc = Eid obj; _ }, m) -> (
      match member_builtin obj m with
      | Some intr ->
          if fe.g.side = Fhost then
            error e.epos "%s.%s is only available in device code" obj m;
          (Builder.call fe.b Types.i32 intr [], Cint)
      | None -> error e.epos "unknown member %s.%s" obj m)
  | Emember (_, m) -> error e.epos "unsupported member access .%s" m
  | Eun (Neg, x) -> (
      let xo, xt = lower_expr fe x in
      match xt with
      | Cint | Clong ->
          ( Builder.bin fe.b Ops.Sub (ir_ty xt)
              (Ir.Imm (Konst.kint ~bits:(if xt = Cint then 32 else 64) 0L))
              xo,
            xt )
      | Cfloat | Cdouble ->
          ( Builder.bin fe.b Ops.FSub (ir_ty xt)
              (Ir.Imm (Konst.KFloat (0.0, if xt = Cfloat then 32 else 64)))
              xo,
            xt )
      | Cbool ->
          let io = coerce fe e.epos (xo, Cbool) Cint in
          (Builder.bin fe.b Ops.Sub Types.i32 (Ir.Imm (Konst.ki32 0)) io, Cint)
      | _ -> error e.epos "cannot negate %s" (cty_to_string xt))
  | Eun (Not, x) ->
      let c = to_bool fe e.epos (lower_expr fe x) in
      (Builder.bin fe.b Ops.Xor Types.TBool c (Ir.Imm (Konst.kbool true)), Cbool)
  | Eun (BitNot, x) ->
      let xo, xt = lower_expr fe x in
      if not (is_integer xt) then error e.epos "~ requires an integer";
      let xt = promote xt Cint in
      let xo = coerce fe e.epos (xo, xt) xt in
      ( Builder.bin fe.b Ops.Xor (ir_ty xt) xo
          (Ir.Imm (Konst.kint ~bits:(if xt = Cint then 32 else 64) (-1L))),
        xt )
  | Ebin (("&&" | "||") as op, l, r) -> lower_shortcircuit fe e.epos op l r
  | Ebin (op, l, r) -> lower_binop fe e.epos op (lower_expr fe l) (lower_expr fe r)
  | Eassign ("=", lhs, rhs) ->
      let ptr, lty = lower_lvalue fe lhs in
      let rv = lower_expr fe rhs in
      let v = coerce fe e.epos rv lty in
      Builder.store fe.b v ptr;
      (v, lty)
  | Eassign (op, lhs, rhs) ->
      (* compound assignment: a op= b *)
      let base_op = String.sub op 0 (String.length op - 1) in
      let ptr, lty = lower_lvalue fe lhs in
      let cur = Builder.load fe.b (ir_ty lty) ptr in
      let rv = lower_expr fe rhs in
      let res, rty = lower_binop fe e.epos base_op (cur, lty) rv in
      let v = coerce fe e.epos (res, rty) lty in
      Builder.store fe.b v ptr;
      (v, lty)
  | Eincdec (is_pre, is_incr, lhs) ->
      let ptr, lty = lower_lvalue fe lhs in
      let cur = Builder.load fe.b (ir_ty lty) ptr in
      let one =
        match lty with
        | Cint -> Ir.Imm (Konst.ki32 1)
        | Clong -> Ir.Imm (Konst.ki64 1)
        | Cfloat -> Ir.Imm (Konst.kf32 1.0)
        | Cdouble -> Ir.Imm (Konst.kf64 1.0)
        | Cptr _ -> Ir.Imm (Konst.ki64 1)
        | _ -> error e.epos "cannot increment %s" (cty_to_string lty)
      in
      let next =
        match lty with
        | Cptr t ->
            let elem = ir_ty_elem t in
            let idx = if is_incr then one else Ir.Imm (Konst.ki64 (-1)) in
            Builder.gep fe.b (Types.TPtr (elem, Types.AS_global)) cur idx
        | Cfloat | Cdouble ->
            Builder.bin fe.b (if is_incr then Ops.FAdd else Ops.FSub) (ir_ty lty) cur one
        | _ -> Builder.bin fe.b (if is_incr then Ops.Add else Ops.Sub) (ir_ty lty) cur one
      in
      Builder.store fe.b next ptr;
      ((if is_pre then next else cur), lty)
  | Ecall (name, args) -> lower_call fe e.epos name args
  | Econd (c, t, f) ->
      let cb = to_bool fe e.epos (lower_expr fe c) in
      let then_bb = Builder.new_block fe.b "cond.then" in
      let else_bb = Builder.new_block fe.b "cond.else" in
      let merge_bb = Builder.new_block fe.b "cond.end" in
      Builder.cond_br fe.b cb then_bb.Ir.label else_bb.Ir.label;
      Builder.position_at fe.b then_bb;
      let tv, tt = lower_expr fe t in
      let t_end = (Builder.current_block fe.b).Ir.label in
      Builder.position_at fe.b else_bb;
      let fv, ft = lower_expr fe f in
      let f_end = (Builder.current_block fe.b).Ir.label in
      let rty = if is_arith tt && is_arith ft then promote tt ft else tt in
      (* coercions must happen in the corresponding branch *)
      Builder.position_at fe.b (Ir.find_block fe.func t_end);
      let tv = coerce fe e.epos (tv, tt) rty in
      Builder.br fe.b merge_bb.Ir.label;
      let t_end = (Builder.current_block fe.b).Ir.label in
      Builder.position_at fe.b (Ir.find_block fe.func f_end);
      let fv = coerce fe e.epos (fv, ft) rty in
      Builder.br fe.b merge_bb.Ir.label;
      let f_end = (Builder.current_block fe.b).Ir.label in
      Builder.position_at fe.b merge_bb;
      (Builder.phi fe.b (ir_ty rty) [ (t_end, tv); (f_end, fv) ], rty)
  | Ecast (ty, x) ->
      let xv = lower_expr fe x in
      (coerce fe e.epos xv (decay ty), decay ty)
  | Eaddr x ->
      let ptr, lty = lower_lvalue fe x in
      let t = match lty with Carr (t, _) -> t | t -> t in
      (ptr, Cptr t)
  | Elaunch l ->
      if fe.g.side <> Fhost then error e.epos "kernel launch in device code";
      lower_launch fe e.epos l

and lower_shortcircuit fe pos op l r =
  let lv = to_bool fe pos (lower_expr fe l) in
  let l_end = (Builder.current_block fe.b).Ir.label in
  let rhs_bb = Builder.new_block fe.b "sc.rhs" in
  let merge_bb = Builder.new_block fe.b "sc.end" in
  (if op = "&&" then Builder.cond_br fe.b lv rhs_bb.Ir.label merge_bb.Ir.label
   else Builder.cond_br fe.b lv merge_bb.Ir.label rhs_bb.Ir.label);
  Builder.position_at fe.b rhs_bb;
  let rv = to_bool fe pos (lower_expr fe r) in
  let r_end = (Builder.current_block fe.b).Ir.label in
  Builder.br fe.b merge_bb.Ir.label;
  Builder.position_at fe.b merge_bb;
  let short_val = Ir.Imm (Konst.kbool (op = "||")) in
  (Builder.phi fe.b Types.TBool [ (l_end, short_val); (r_end, rv) ], Cbool)

and lower_binop fe pos op (lo, lt) (ro, rt) =
  let lt = decay lt and rt = decay rt in
  match op with
  | "+" when is_pointer lt && is_integer rt ->
      let elem = match lt with Cptr t -> ir_ty_elem t | _ -> assert false in
      let idx = coerce fe pos (ro, rt) Clong in
      (Builder.gep fe.b (Types.TPtr (elem, Types.AS_global)) lo idx, lt)
  | "+" when is_integer lt && is_pointer rt ->
      let elem = match rt with Cptr t -> ir_ty_elem t | _ -> assert false in
      let idx = coerce fe pos (lo, lt) Clong in
      (Builder.gep fe.b (Types.TPtr (elem, Types.AS_global)) ro idx, rt)
  | "-" when is_pointer lt && is_integer rt ->
      let elem = match lt with Cptr t -> ir_ty_elem t | _ -> assert false in
      let idx = coerce fe pos (ro, rt) Clong in
      let neg = Builder.bin fe.b Ops.Sub Types.i64 (Ir.Imm (Konst.ki64 0)) idx in
      (Builder.gep fe.b (Types.TPtr (elem, Types.AS_global)) lo neg, lt)
  | "==" | "!=" | "<" | "<=" | ">" | ">=" ->
      let cop =
        match op with
        | "==" -> Ops.CEq
        | "!=" -> Ops.CNe
        | "<" -> Ops.CLt
        | "<=" -> Ops.CLe
        | ">" -> Ops.CGt
        | _ -> Ops.CGe
      in
      if is_pointer lt && is_pointer rt then (Builder.cmp fe.b cop lo ro, Cbool)
      else begin
        let t = promote (promote lt rt) Cint in
        let lo = coerce fe pos (lo, lt) t and ro = coerce fe pos (ro, rt) t in
        (Builder.cmp fe.b cop lo ro, Cbool)
      end
  | "+" | "-" | "*" | "/" | "%" | "&" | "|" | "^" | "<<" | ">>" ->
      if not (is_arith lt && is_arith rt) then
        error pos "invalid operands to %s: %s, %s" op (cty_to_string lt) (cty_to_string rt);
      let t =
        match op with
        | "%" | "&" | "|" | "^" | "<<" | ">>" ->
            if not (is_integer lt && is_integer rt) then
              error pos "%s requires integer operands" op;
            promote (promote lt rt) Cint
        | _ -> promote (promote lt rt) Cint
      in
      let lo = coerce fe pos (lo, lt) t and ro = coerce fe pos (ro, rt) t in
      let irop =
        match (op, is_floating t) with
        | "+", false -> Ops.Add
        | "-", false -> Ops.Sub
        | "*", false -> Ops.Mul
        | "/", false -> Ops.SDiv
        | "%", false -> Ops.SRem
        | "+", true -> Ops.FAdd
        | "-", true -> Ops.FSub
        | "*", true -> Ops.FMul
        | "/", true -> Ops.FDiv
        | "%", true -> Ops.FRem
        | "&", _ -> Ops.And
        | "|", _ -> Ops.Or
        | "^", _ -> Ops.Xor
        | "<<", _ -> Ops.Shl
        | ">>", _ -> Ops.AShr
        | _ -> error pos "unsupported operator %s" op
      in
      (Builder.bin fe.b irop (ir_ty t) lo ro, t)
  | _ -> error pos "unsupported operator %s" op

and lower_lvalue fe (e : expr) : Ir.operand * cty =
  match e.desc with
  | Eid name -> (
      match lookup_var fe name with
      | Some v -> (v.vptr, v.vty)
      | None -> (
          match Util.Smap.find_opt name fe.g.globals with
          | Some (ty, gkind) ->
              (* Device globals are visible to device code; host globals
                 to host code. *)
              let dev_side = fe.g.side <> Fhost in
              let gv_dev = gkind = Fdevice in
              if dev_side <> gv_dev then
                error e.epos "%s %s is not accessible from %s code"
                  (if gv_dev then "device global" else "host global")
                  name
                  (if dev_side then "device" else "host");
              (Ir.Glob name, ty)
          | None -> error e.epos "unknown variable %s" name))
  | Eindex (base, idx) ->
      let bo, bt = lower_expr fe base in
      let io, it = lower_expr fe idx in
      if not (is_integer it) then error e.epos "array index must be an integer";
      let elem =
        match decay bt with
        | Cptr t -> t
        | t -> error e.epos "cannot index %s" (cty_to_string t)
      in
      let idx64 = coerce fe e.epos (io, it) Clong in
      (Builder.gep fe.b (Types.TPtr (ir_ty_elem elem, Types.AS_global)) bo idx64, elem)
  | Ederef x -> (
      let xo, xt = lower_expr fe x in
      match decay xt with
      | Cptr t -> (xo, t)
      | t -> error e.epos "cannot dereference %s" (cty_to_string t))
  | _ -> error e.epos "expression is not an lvalue"

and lower_call fe pos name args : Ir.operand * cty =
  let g = fe.g in
  (* 1. math builtins *)
  match math_builtin name with
  | Some (intr, arity, base) ->
      if List.length args <> arity then error pos "%s expects %d arguments" name arity;
      let vals = List.map (fun a -> coerce fe pos (lower_expr fe a) base) args in
      (Builder.call fe.b (ir_ty base) intr vals, base)
  | None -> (
      match name with
      | "min" | "max" ->
          (* polymorphic min/max *)
          let vals = List.map (lower_expr fe) args in
          (match vals with
          | [ (ao, at); (bo, bt) ] ->
              let t = promote (promote at bt) Cint in
              let ao = coerce fe pos (ao, at) t and bo = coerce fe pos (bo, bt) t in
              let op =
                match (name, is_floating t) with
                | "min", false -> Ops.SMin
                | "max", false -> Ops.SMax
                | "min", true -> Ops.FMin
                | _ -> Ops.FMax
              in
              (Builder.bin fe.b op (ir_ty t) ao bo, t)
          | _ -> error pos "%s expects 2 arguments" name)
      | "fminf" | "fmaxf" | "fmin" | "fmax" ->
          let base = if name.[String.length name - 1] = 'f' then Cfloat else Cdouble in
          let vals = List.map (fun a -> coerce fe pos (lower_expr fe a) base) args in
          (match vals with
          | [ a; b ] ->
              let op = if name = "fminf" || name = "fmin" then Ops.FMin else Ops.FMax in
              (Builder.bin fe.b op (ir_ty base) a b, base)
          | _ -> error pos "%s expects 2 arguments" name)
      | "__syncthreads" ->
          if g.side = Fhost then error pos "__syncthreads in host code";
          (Builder.call fe.b Types.TVoid Ir.Intrinsics.barrier [], Cvoid)
      | "atomicAdd" -> (
          if g.side = Fhost then error pos "atomicAdd in host code";
          match List.map (lower_expr fe) args with
          | [ (po, pt); rv ] -> (
              match decay pt with
              | Cptr Cfloat ->
                  let v = coerce fe pos rv Cfloat in
                  (Builder.call fe.b Types.f32 Ir.Intrinsics.atomic_add_f32 [ po; v ], Cfloat)
              | Cptr Cdouble ->
                  let v = coerce fe pos rv Cdouble in
                  (Builder.call fe.b Types.f64 Ir.Intrinsics.atomic_add_f64 [ po; v ], Cdouble)
              | Cptr Cint ->
                  let v = coerce fe pos rv Cint in
                  (Builder.call fe.b Types.i32 Ir.Intrinsics.atomic_add_i32 [ po; v ], Cint)
              | t -> error pos "atomicAdd on %s" (cty_to_string t))
          | _ -> error pos "atomicAdd expects 2 arguments")
      | _ -> (
          (* 2. vendor runtime API (host only) *)
          match (g.side, api_base name) with
          | Fhost, Some base -> lower_vendor_call fe pos base args
          | _, _ -> (
              match name with
              | "printf" when g.side = Fhost ->
                  let vals =
                    List.map
                      (fun a ->
                        let o, t = lower_expr fe a in
                        (* default argument promotion: float -> double *)
                        if t = Cfloat then coerce fe pos ((o : Ir.operand), t) Cdouble else o)
                      args
                  in
                  (Builder.call fe.b Types.i32 "printf" vals, Cint)
              | "malloc" when g.side = Fhost ->
                  let v =
                    match args with
                    | [ a ] -> coerce fe pos (lower_expr fe a) Clong
                    | _ -> error pos "malloc expects 1 argument"
                  in
                  (Builder.call fe.b (ir_ty (Cptr Cvoid)) "malloc" [ v ], Cptr Cvoid)
              | "free" when g.side = Fhost ->
                  let v =
                    match args with
                    | [ a ] -> fst (lower_expr fe a)
                    | _ -> error pos "free expects 1 argument"
                  in
                  (Builder.call fe.b Types.TVoid "free" [ v ], Cvoid)
              | "exit" when g.side = Fhost ->
                  let v =
                    match args with
                    | [ a ] -> coerce fe pos (lower_expr fe a) Cint
                    | _ -> error pos "exit expects 1 argument"
                  in
                  (Builder.call fe.b Types.TVoid "exit" [ v ], Cvoid)
              | _ -> (
                  (* 3. user functions *)
                  match Util.Smap.find_opt name g.funcs with
                  | Some s ->
                      (* device side may call device functions; host side host functions *)
                      let callable =
                        match (g.side, s.skind) with
                        | Fhost, Fhost -> true
                        | Fhost, _ -> false
                        | _, Fdevice -> true
                        | _, _ -> false
                      in
                      if not callable then
                        error pos "cannot call %s from %s code" name
                          (if g.side = Fhost then "host" else "device");
                      if List.length args <> List.length s.sparams then
                        error pos "%s expects %d arguments" name (List.length s.sparams);
                      let vals =
                        List.map2
                          (fun a pty -> coerce fe pos (lower_expr fe a) pty)
                          args s.sparams
                      in
                      (Builder.call fe.b (ir_ty s.sret) name vals, s.sret)
                  | None -> error pos "call to undeclared function %s" name))))

and lower_vendor_call fe pos base args : Ir.operand * cty =
  let g = fe.g in
  let v name = (match g.vendor with Cuda -> "cuda" | Hip -> "hip") ^ name in
  let arg i = List.nth args i in
  let expect n = if List.length args <> n then error pos "%s expects %d arguments" base n in
  match base with
  | "Malloc" ->
      expect 1;
      let sz = coerce fe pos (lower_expr fe (arg 0)) Clong in
      (Builder.call fe.b (ir_ty (Cptr Cvoid)) (v "Malloc") [ sz ], Cptr Cvoid)
  | "Free" ->
      expect 1;
      let p = fst (lower_expr fe (arg 0)) in
      (Builder.call fe.b Types.TVoid (v "Free") [ p ], Cvoid)
  | "MemcpyHtoD" | "MemcpyDtoH" | "MemcpyDtoD" ->
      expect 3;
      let d = fst (lower_expr fe (arg 0)) in
      let s = fst (lower_expr fe (arg 1)) in
      let n = coerce fe pos (lower_expr fe (arg 2)) Clong in
      (Builder.call fe.b Types.TVoid (v ("Memcpy" ^ String.sub base 6 4)) [ d; s; n ], Cvoid)
  | "DeviceSynchronize" ->
      expect 0;
      (Builder.call fe.b Types.TVoid (v "DeviceSynchronize") [], Cvoid)
  | b -> error pos "unsupported runtime API %s" b

and lower_launch fe pos (l : launch) : Ir.operand * cty =
  let g = fe.g in
  let kdef =
    match Util.Smap.find_opt l.lkernel g.kernels with
    | Some k -> k
    | None -> error pos "launch of unknown kernel %s" l.lkernel
  in
  let grid = coerce fe pos (lower_expr fe l.lgrid) Cint in
  let block = coerce fe pos (lower_expr fe l.lblock) Cint in
  let shmem =
    match l.lshmem with
    | Some e -> coerce fe pos (lower_expr fe e) Cint
    | None -> Ir.Imm (Konst.ki32 0)
  in
  if List.length l.largs <> List.length kdef.fparams then
    error pos "kernel %s expects %d arguments" l.lkernel (List.length kdef.fparams);
  let vals =
    List.map2
      (fun a (pty, _) -> coerce fe pos (lower_expr fe a) (decay pty))
      l.largs kdef.fparams
  in
  let stub = "__stub_" ^ l.lkernel in
  (Builder.call fe.b Types.TVoid stub ([ grid; block; shmem ] @ vals), Cvoid)

(* ------------------------------------------------------------------ *)
(* Statement lowering                                                  *)

(* Source-location marker: a [dbg.loc(line, col)] pseudo-call preceding
   the code lowered for each leaf statement. The analyses attribute
   findings to the closest preceding marker in the same block; the
   optimizer strips markers before any pass runs. *)
let emit_loc fe (pos : pos) =
  if fe.g.debug then
    Builder.add_instr fe.b
      (Ir.ICall
         ( None,
           Ir.Intrinsics.dbg_loc,
           [ Ir.Imm (Konst.ki32 pos.line); Ir.Imm (Konst.ki32 pos.col) ] ))

let rec lower_stmt fe (s : stmt) : unit =
  (match s.sdesc with Sblock _ | Sseq _ -> () | _ -> emit_loc fe s.spos);
  match s.sdesc with
  | Sblock ss ->
      push_scope fe;
      List.iter (lower_stmt fe) ss;
      pop_scope fe
  | Sseq ss -> List.iter (lower_stmt fe) ss
  | Sexpr e -> ignore (lower_expr fe e)
  | Sdecl (ty, name, init) -> (
      match ty with
      | Carr (elem, n) ->
          if init <> None then error s.spos "array initializers are not supported";
          let ptr = Builder.alloca fe.b (ir_ty elem) n in
          declare_var fe s.spos name { vty = Carr (elem, n); vptr = ptr }
      | _ ->
          let ty = decay ty in
          let ptr = Builder.alloca fe.b (ir_ty ty) 1 in
          declare_var fe s.spos name { vty = ty; vptr = ptr };
          (match init with
          | Some e ->
              let v = coerce fe s.spos (lower_expr fe e) ty in
              Builder.store fe.b v ptr
          | None -> ()))
  | Sif (c, t, els) ->
      let cb = to_bool fe s.spos (lower_expr fe c) in
      let then_bb = Builder.new_block fe.b "if.then" in
      let else_bb = Builder.new_block fe.b "if.else" in
      let end_bb = Builder.new_block fe.b "if.end" in
      Builder.cond_br fe.b cb then_bb.Ir.label else_bb.Ir.label;
      Builder.position_at fe.b then_bb;
      push_scope fe;
      lower_stmt fe t;
      pop_scope fe;
      Builder.br fe.b end_bb.Ir.label;
      Builder.position_at fe.b else_bb;
      (match els with
      | Some e ->
          push_scope fe;
          lower_stmt fe e;
          pop_scope fe
      | None -> ());
      Builder.br fe.b end_bb.Ir.label;
      Builder.position_at fe.b end_bb
  | Swhile (c, body) ->
      let cond_bb = Builder.new_block fe.b "while.cond" in
      let body_bb = Builder.new_block fe.b "while.body" in
      let end_bb = Builder.new_block fe.b "while.end" in
      Builder.br fe.b cond_bb.Ir.label;
      Builder.position_at fe.b cond_bb;
      let cb = to_bool fe s.spos (lower_expr fe c) in
      Builder.cond_br fe.b cb body_bb.Ir.label end_bb.Ir.label;
      Builder.position_at fe.b body_bb;
      fe.loops <- { break_to = end_bb.Ir.label; continue_to = cond_bb.Ir.label } :: fe.loops;
      push_scope fe;
      lower_stmt fe body;
      pop_scope fe;
      fe.loops <- List.tl fe.loops;
      Builder.br fe.b cond_bb.Ir.label;
      Builder.position_at fe.b end_bb
  | Sfor (init, cond, step, body) ->
      push_scope fe;
      (match init with Some i -> lower_stmt fe i | None -> ());
      let cond_bb = Builder.new_block fe.b "for.cond" in
      let body_bb = Builder.new_block fe.b "for.body" in
      let step_bb = Builder.new_block fe.b "for.step" in
      let end_bb = Builder.new_block fe.b "for.end" in
      Builder.br fe.b cond_bb.Ir.label;
      Builder.position_at fe.b cond_bb;
      (match cond with
      | Some c ->
          let cb = to_bool fe s.spos (lower_expr fe c) in
          Builder.cond_br fe.b cb body_bb.Ir.label end_bb.Ir.label
      | None -> Builder.br fe.b body_bb.Ir.label);
      Builder.position_at fe.b body_bb;
      fe.loops <- { break_to = end_bb.Ir.label; continue_to = step_bb.Ir.label } :: fe.loops;
      push_scope fe;
      lower_stmt fe body;
      pop_scope fe;
      fe.loops <- List.tl fe.loops;
      Builder.br fe.b step_bb.Ir.label;
      Builder.position_at fe.b step_bb;
      (match step with Some e -> ignore (lower_expr fe e) | None -> ());
      Builder.br fe.b cond_bb.Ir.label;
      Builder.position_at fe.b end_bb;
      pop_scope fe
  | Sreturn v -> (
      match (v, fe.fret) with
      | None, Cvoid -> Builder.ret fe.b None
      | None, _ -> error s.spos "non-void function must return a value"
      | Some _, Cvoid -> error s.spos "void function cannot return a value"
      | Some e, rt ->
          let rv = coerce fe s.spos (lower_expr fe e) rt in
          Builder.ret fe.b (Some rv))
  | Sbreak -> (
      match fe.loops with
      | { break_to; _ } :: _ -> Builder.br fe.b break_to
      | [] -> error s.spos "break outside loop")
  | Scontinue -> (
      match fe.loops with
      | { continue_to; _ } :: _ -> Builder.br fe.b continue_to
      | [] -> error s.spos "continue outside loop")

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)

let const_eval_init (e : expr) : Konst.t =
  let rec go e =
    match e.desc with
    | Eint (v, false) -> Konst.kint ~bits:32 v
    | Eint (v, true) -> Konst.kint ~bits:64 v
    | Efloat (v, false) -> Konst.kf32 v
    | Efloat (v, true) -> Konst.kf64 v
    | Ebool b -> Konst.kbool b
    | Eun (Neg, x) -> (
        match go x with
        | Konst.KInt (v, bits) -> Konst.kint ~bits (Int64.neg v)
        | Konst.KFloat (v, bits) -> Konst.KFloat (-.v, bits)
        | k -> k)
    | Ecast (ty, x) -> (
        let k = go x in
        match (ty, k) with
        | Cfloat, Konst.KInt (v, _) -> Konst.kf32 (Int64.to_float v)
        | Cdouble, Konst.KInt (v, _) -> Konst.kf64 (Int64.to_float v)
        | Cint, Konst.KFloat (v, _) -> Konst.kint ~bits:32 (Int64.of_float v)
        | Clong, Konst.KFloat (v, _) -> Konst.kint ~bits:64 (Int64.of_float v)
        | _ -> k)
    | _ -> error e.epos "global initializer must be a constant expression"
  in
  go e

let lower_fundef (g : genv) (fd : fundef) ~(irname : string) ~(kind : Ir.fkind)
    ~(extra_params : (string * Types.ty) list) (gen_body : fenv -> unit) : Ir.func =
  let params =
    extra_params
    @ List.map (fun (ty, n) -> (n, ir_ty (decay ty))) fd.fparams
  in
  let f = Ir.create_func ~kind irname params (ir_ty fd.fret) in
  List.iter
    (fun a ->
      match a with
      | LaunchBounds (t, b) -> f.Ir.attrs.launch_bounds <- Some (t, b)
      | Annotate _ -> ())
    fd.fattrs;
  let b = Builder.create f in
  let fe = { g; func = f; b; vars = [ Util.Smap.empty ]; loops = []; fret = fd.fret } in
  (* Parameters are spilled to stack slots so they are assignable;
     mem2reg promotes them back to registers. *)
  let nextra = List.length extra_params in
  List.iteri
    (fun i (_, reg) ->
      if i >= nextra then begin
        let cty, cname = List.nth fd.fparams (i - nextra) in
        let cty = decay cty in
        let ptr = Builder.alloca fe.b (ir_ty cty) 1 in
        Builder.store fe.b (Ir.Reg reg) ptr;
        declare_var fe fd.fpos cname { vty = cty; vptr = ptr }
      end)
    f.Ir.params;
  gen_body fe;
  (* Implicit return for void functions and for main. *)
  if not (Builder.terminated fe.b) then begin
    if fd.fret = Cvoid then Builder.ret fe.b None
    else if fd.fcname = "main" then Builder.ret fe.b (Some (Ir.Imm (Konst.ki32 0)))
    else Builder.unreachable fe.b
  end;
  ignore (Cfg.remove_unreachable f);
  f

let collect_sigs (prog : program) : fsig Util.Smap.t * fundef Util.Smap.t =
  List.fold_left
    (fun (sigs, kernels) d ->
      match d with
      | Dfun fd ->
          let s =
            { sret = fd.fret; sparams = List.map (fun (t, _) -> decay t) fd.fparams;
              skind = fd.fkind }
          in
          let kernels =
            if fd.fkind = Fglobal then Util.Smap.add fd.fcname fd kernels else kernels
          in
          (Util.Smap.add fd.fcname s sigs, kernels)
      | Dglob _ -> (sigs, kernels))
    (Util.Smap.empty, Util.Smap.empty) prog

let collect_globals (prog : program) : (cty * funkind) Util.Smap.t =
  List.fold_left
    (fun m d ->
      match d with
      | Dglob gd ->
          Util.Smap.add gd.gcname
            ((match gd.gcty with Carr _ -> gd.gcty | t -> decay t), gd.gkind)
            m
      | Dfun _ -> m)
    Util.Smap.empty prog

let annotations_of fd =
  List.filter_map
    (function Annotate (k, args) -> Some (k, args) | LaunchBounds _ -> None)
    fd.fattrs

(* Device-side lowering: kernels, device functions, device globals,
   jit annotations. *)
let lower_device ?(debug = false) ~(mid : string) ~(name : string) (prog : program) :
    Ir.modul =
  let modul =
    { Ir.mid; mname = name ^ ".dev"; mtarget = Ir.TDevice; globals = []; funcs = [];
      annotations = []; ctors = []; mgen = 0 }
  in
  let sigs, kernels = collect_sigs prog in
  let g =
    { vendor = Cuda; side = Fglobal; debug; funcs = sigs; globals = collect_globals prog;
      kernels; modul; strings = []; nstr = 0 }
  in
  List.iter
    (fun d ->
      match d with
      | Dglob gd when gd.gkind = Fdevice ->
          let init =
            match gd.gcinit with
            | None -> Ir.InitZero
            | Some e -> Ir.InitConsts [ const_eval_init e ]
          in
          let space = if gd.gshared then Types.AS_shared else Types.AS_global in
          modul.Ir.globals <-
            modul.Ir.globals
            @ [
                { Ir.gname = gd.gcname; gty = ir_ty gd.gcty; gspace = space;
                  ginit = init; gconst = false; gextern = false };
              ]
      | Dglob _ -> ()
      | Dfun fd when fd.fkind = Fglobal || fd.fkind = Fdevice -> (
          match fd.fbody with
          | None -> ()
          | Some body ->
              let kind = if fd.fkind = Fglobal then Ir.Kernel else Ir.Device in
              let f =
                lower_fundef g fd ~irname:fd.fcname ~kind ~extra_params:[] (fun fe ->
                    lower_stmt fe body)
              in
              modul.Ir.funcs <- modul.Ir.funcs @ [ f ];
              List.iter
                (fun (k, args) ->
                  modul.Ir.annotations <-
                    modul.Ir.annotations @ [ { Ir.afunc = fd.fcname; akey = k; aargs = args } ])
                (annotations_of fd))
      | Dfun _ -> ())
    prog;
  modul

(* Host-side lowering: host functions, a stub per kernel calling
   cudaLaunchKernel/hipLaunchKernel, and a module constructor invoking
   the vendor registration API for stubs and device globals. *)
let lower_host ?(debug = false) ~(vendor : vendor) ~(mid : string) ~(name : string)
    (prog : program) : Ir.modul =
  let modul =
    { Ir.mid; mname = name ^ ".host"; mtarget = Ir.THost; globals = []; funcs = [];
      annotations = []; ctors = []; mgen = 0 }
  in
  let sigs, kernels = collect_sigs prog in
  let g =
    { vendor; side = Fhost; debug; funcs = sigs; globals = collect_globals prog; kernels;
      modul; strings = []; nstr = 0 }
  in
  let vname n = (match vendor with Cuda -> "cuda" | Hip -> "hip") ^ n in
  (* Extern declarations for the vendor runtime API. *)
  let decl name params ret =
    Ir.create_func ~kind:Ir.Host ~is_decl:true name params ret
  in
  let pv = Types.TPtr (Types.TInt 8, Types.AS_global) in
  modul.Ir.funcs <-
    [
      decl (vname "Malloc") [ ("bytes", Types.i64) ] pv;
      decl (vname "Free") [ ("p", pv) ] Types.TVoid;
      decl (vname "MemcpyHtoD") [ ("d", pv); ("s", pv); ("n", Types.i64) ] Types.TVoid;
      decl (vname "MemcpyDtoH") [ ("d", pv); ("s", pv); ("n", Types.i64) ] Types.TVoid;
      decl (vname "MemcpyDtoD") [ ("d", pv); ("s", pv); ("n", Types.i64) ] Types.TVoid;
      decl (vname "DeviceSynchronize") [] Types.TVoid;
      decl (vname "LaunchKernel") [] Types.TVoid;
      decl ("__" ^ vendor_to_string vendor ^ "RegisterFunction") [] Types.TVoid;
      decl ("__" ^ vendor_to_string vendor ^ "RegisterVar") [] Types.TVoid;
      decl "printf" [] Types.i32;
      decl "malloc" [ ("bytes", Types.i64) ] pv;
      decl "free" [ ("p", pv) ] Types.TVoid;
      decl "exit" [ ("code", Types.i32) ] Types.TVoid;
    ];
  (* Host globals. *)
  List.iter
    (fun d ->
      match d with
      | Dglob gd when gd.gkind <> Fdevice ->
          let init =
            match gd.gcinit with
            | None -> Ir.InitZero
            | Some e -> Ir.InitConsts [ const_eval_init e ]
          in
          modul.Ir.globals <-
            modul.Ir.globals
            @ [
                { Ir.gname = gd.gcname; gty = ir_ty gd.gcty; gspace = Types.AS_global;
                  ginit = init; gconst = false; gextern = false };
              ]
      | _ -> ())
    prog;
  (* Stubs: one host function per kernel; annotations transfer to the
     stub, which is what the Proteus plugin inspects on the host path. *)
  let kernel_list =
    List.filter_map
      (fun d ->
        match d with Dfun fd when fd.fkind = Fglobal -> Some fd | _ -> None)
      prog
  in
  List.iter
    (fun (fd : fundef) ->
      let stub_name = "__stub_" ^ fd.fcname in
      let params =
        [ ("grid", Types.i32); ("block", Types.i32); ("shmem", Types.i32) ]
        @ List.map (fun (t, n) -> (n, ir_ty (decay t))) fd.fparams
      in
      let f = Ir.create_func ~kind:Ir.Host stub_name params Types.TVoid in
      let b = Builder.create f in
      let args =
        Ir.Glob stub_name
        :: List.map (fun (_, r) -> Ir.Reg r) f.Ir.params
      in
      (* cudaLaunchKernel(stub, grid, block, shmem, args...) *)
      Builder.add_instr b (Ir.ICall (None, vname "LaunchKernel", args));
      Builder.ret b None;
      modul.Ir.funcs <- modul.Ir.funcs @ [ f ];
      List.iter
        (fun (k, args) ->
          modul.Ir.annotations <-
            modul.Ir.annotations @ [ { Ir.afunc = stub_name; akey = k; aargs = args } ])
        (annotations_of fd))
    kernel_list;
  (* Host functions. *)
  List.iter
    (fun d ->
      match d with
      | Dfun fd when fd.fkind = Fhost -> (
          match fd.fbody with
          | None -> ()
          | Some body ->
              let f =
                lower_fundef g fd ~irname:fd.fcname ~kind:Ir.Host ~extra_params:[]
                  (fun fe -> lower_stmt fe body)
              in
              modul.Ir.funcs <- modul.Ir.funcs @ [ f ])
      | _ -> ())
    prog;
  (* Registration constructor. *)
  let ctor_name = "__module_ctor" in
  let ctor = Ir.create_func ~kind:Ir.Host ctor_name [] Types.TVoid in
  let b = Builder.create ctor in
  List.iter
    (fun (fd : fundef) ->
      let sname = string_global g fd.fcname in
      Builder.add_instr b
        (Ir.ICall
           ( None,
             "__" ^ vendor_to_string vendor ^ "RegisterFunction",
             [ Ir.Glob ("__stub_" ^ fd.fcname); Ir.Glob sname ] )))
    kernel_list;
  List.iter
    (fun d ->
      match d with
      | Dglob gd when gd.gkind = Fdevice ->
          let sname = string_global g gd.gcname in
          Builder.add_instr b
            (Ir.ICall
               (None, "__" ^ vendor_to_string vendor ^ "RegisterVar", [ Ir.Glob sname ]))
      | _ -> ())
    prog;
  Builder.ret b None;
  modul.Ir.funcs <- modul.Ir.funcs @ [ ctor ];
  modul.Ir.ctors <- [ ctor_name ];
  modul
