(* Instruction selection: optimized SSA IR -> machine IR with virtual
   registers. Phis are deconstructed into parallel copies on (split)
   predecessor edges; GEPs lower to integer address arithmetic; allocas
   become frame offsets in per-thread scratch. *)

open Proteus_support
open Proteus_ir

(* Split critical edges so phi copies can be placed on edges safely. *)
let split_critical_edges (f : Ir.func) : unit =
  let cfg = Cfg.build f in
  let counter = ref 0 in
  List.iter
    (fun (b : Ir.block) ->
      let succs = Ir.successors b.Ir.term in
      if List.length succs > 1 then
        List.iter
          (fun s ->
            if List.length (Cfg.preds cfg s) > 1 then begin
              (* new block on the edge b -> s *)
              incr counter;
              let label = Printf.sprintf "%s.crit%d" b.Ir.label !counter in
              let nb = { Ir.label; insts = []; term = Ir.TBr s } in
              f.Ir.blocks <- f.Ir.blocks @ [ nb ];
              b.Ir.term <- Ir.retarget_term b.Ir.term ~from_label:s ~to_label:label;
              (* phis in s that came from b now come from the new block;
                 only this edge's entries move. *)
              let sb = Ir.find_block f s in
              sb.Ir.insts <-
                List.map
                  (function
                    | Ir.IPhi (d, inc) ->
                        Ir.IPhi
                          (d, List.map (fun (l, v) -> ((if l = b.Ir.label then label else l), v)) inc)
                    | i -> i)
                  sb.Ir.insts
            end)
          succs)
    f.Ir.blocks

type ctx = {
  func : Ir.func;
  uni : Uniformity.t;
  reg_map : (int, Mach.reg) Hashtbl.t;
  scratch_regs : (int, bool) Hashtbl.t; (* IR regs holding scratch-derived pointers *)
  mutable next_v : int;
  mutable next_s : int;
  mutable frame : int;
  modul : Ir.modul;
}

let fresh_reg ctx cls =
  match cls with
  | Mach.CV ->
      let r = { Mach.rid = ctx.next_v; rcls = Mach.CV } in
      ctx.next_v <- ctx.next_v + 1;
      r
  | Mach.CS ->
      let r = { Mach.rid = ctx.next_s; rcls = Mach.CS } in
      ctx.next_s <- ctx.next_s + 1;
      r

let reg_for ctx (r : int) : Mach.reg =
  match Hashtbl.find_opt ctx.reg_map r with
  | Some mr -> mr
  | None ->
      let cls = if Uniformity.is_divergent ctx.uni r then Mach.CV else Mach.CS in
      let mr = fresh_reg ctx cls in
      Hashtbl.replace ctx.reg_map r mr;
      mr

let src_of ctx = function
  | Ir.Reg r -> Mach.Rs (reg_for ctx r)
  | Ir.Imm k -> Mach.Ki k
  | Ir.Glob g -> Mach.Gs g

let is_scratch_ptr ctx = function
  | Ir.Reg r -> Hashtbl.mem ctx.scratch_regs r
  | _ -> false

let elem_size ctx (ptr : Ir.operand) =
  match Ir.operand_ty ctx.modul ctx.func ptr with
  | Types.TPtr (t, _) -> Types.size_of t
  | t -> Util.failf "Isel: gep base is %s" (Types.to_string t)

let lower_func (m : Ir.modul) (f : Ir.func) : Mach.mfunc =
  let f = Ir.clone_func f in
  split_critical_edges f;
  let uni = Uniformity.compute f in
  let ctx =
    {
      func = f;
      uni;
      reg_map = Hashtbl.create 64;
      scratch_regs = Hashtbl.create 8;
      next_v = 0;
      next_s = 0;
      frame = 0;
      modul = m;
    }
  in
  (* Mark scratch provenance: alloca results and geps/casts on them. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Ir.iter_instrs f (fun i ->
        let mark d =
          if not (Hashtbl.mem ctx.scratch_regs d) then begin
            Hashtbl.replace ctx.scratch_regs d true;
            changed := true
          end
        in
        match i with
        | Ir.IAlloca (d, _, _) -> mark d
        | Ir.IGep (d, p, _) when is_scratch_ptr ctx p -> mark d
        | Ir.ICast (d, _, p) when is_scratch_ptr ctx p -> mark d
        | _ -> ())
  done;
  (* Parameter registers, in order. *)
  let params = List.map (fun (_, r) -> reg_for ctx r) f.Ir.params in
  let arg_tys = List.map (fun (_, r) -> Ir.reg_ty f r) f.Ir.params in
  (* Pre-assign frame offsets for allocas. *)
  let frame_off : (int, int) Hashtbl.t = Hashtbl.create 8 in
  Ir.iter_instrs f (fun i ->
      match i with
      | Ir.IAlloca (d, ty, n) ->
          let sz = Util.round_up (Types.size_of ty * n) 8 in
          Hashtbl.replace frame_off d ctx.frame;
          ctx.frame <- ctx.frame + sz
      | _ -> ());
  let lower_instr (acc : Mach.minstr list) (i : Ir.instr) : Mach.minstr list =
    let emit op dst srcs = { Mach.op; dst; srcs } :: acc in
    match i with
    | Ir.IBin (d, op, a, b) ->
        let ty = Ir.reg_ty f d in
        emit (Mach.Obin (op, ty)) (Some (reg_for ctx d)) [ src_of ctx a; src_of ctx b ]
    | Ir.ICmp (d, op, a, b) ->
        let ty = Ir.operand_ty m f a in
        emit (Mach.Ocmp (op, ty)) (Some (reg_for ctx d)) [ src_of ctx a; src_of ctx b ]
    | Ir.ISelect (d, c, a, b) ->
        emit (Mach.Osel (Ir.reg_ty f d)) (Some (reg_for ctx d))
          [ src_of ctx c; src_of ctx a; src_of ctx b ]
    | Ir.ICast (d, op, a) ->
        emit
          (Mach.Ocast (op, Ir.reg_ty f d, Ir.operand_ty m f a))
          (Some (reg_for ctx d)) [ src_of ctx a ]
    | Ir.ILoad (d, p) ->
        let space = if is_scratch_ptr ctx p then Mach.SScratch else Mach.SGlobal in
        emit (Mach.Old (space, Ir.reg_ty f d)) (Some (reg_for ctx d)) [ src_of ctx p ]
    | Ir.IStore (v, p) ->
        let space = if is_scratch_ptr ctx p then Mach.SScratch else Mach.SGlobal in
        emit
          (Mach.Ost (space, Ir.operand_ty m f v))
          None
          [ src_of ctx v; src_of ctx p ]
    | Ir.IGep (d, p, idx) -> (
        let size = elem_size ctx p in
        let dst = reg_for ctx d in
        match idx with
        | Ir.Imm k ->
            let off = Int64.mul (Konst.as_int k) (Int64.of_int size) in
            if Int64.equal off 0L then
              emit (Mach.Omov (Types.TInt 64)) (Some dst) [ src_of ctx p ]
            else
              emit (Mach.Obin (Ops.Add, Types.TInt 64)) (Some dst)
                [ src_of ctx p; Mach.Ki (Konst.kint ~bits:64 off) ]
        | _ ->
            let idx_cls =
              match idx with
              | Ir.Reg r -> (reg_for ctx r).Mach.rcls
              | _ -> Mach.CS
            in
            if size = 1 then
              emit (Mach.Obin (Ops.Add, Types.TInt 64)) (Some dst)
                [ src_of ctx p; src_of ctx idx ]
            else begin
              let tmp = fresh_reg ctx idx_cls in
              let mul =
                {
                  Mach.op = Mach.Obin (Ops.Mul, Types.TInt 64);
                  dst = Some tmp;
                  srcs = [ src_of ctx idx; Mach.Ki (Konst.kint ~bits:64 (Int64.of_int size)) ];
                }
              in
              let add =
                {
                  Mach.op = Mach.Obin (Ops.Add, Types.TInt 64);
                  dst = Some dst;
                  srcs = [ src_of ctx p; Mach.Rs tmp ];
                }
              in
              add :: mul :: acc
            end)
    | Ir.ICall (dst, q, []) when Ir.Intrinsics.is_gpu_query q ->
        emit (Mach.Oquery q) (Option.map (reg_for ctx) dst) []
    | Ir.ICall (Some d, name, args) when Ir.Intrinsics.is_math name ->
        emit
          (Mach.Omath (name, Ir.reg_ty f d))
          (Some (reg_for ctx d))
          (List.map (src_of ctx) args)
    | Ir.ICall (dst, name, [ p; v ]) when Ir.Intrinsics.is_atomic name ->
        emit (Mach.Oatomic name)
          (Option.map (reg_for ctx) dst)
          [ src_of ctx p; src_of ctx v ]
    | Ir.ICall (None, name, _) when name = Ir.Intrinsics.barrier ->
        emit Mach.Obarrier None []
    | Ir.ICall (_, name, _) ->
        Util.failf "Isel: residual call to @%s in %s (inlining failed?)" name f.Ir.fname
    | Ir.IPhi (d, _) ->
        (* dst register materialised; copies are emitted in predecessors *)
        ignore (reg_for ctx d);
        acc
    | Ir.IAlloca (d, _, _) ->
        let off = Hashtbl.find frame_off d in
        emit Mach.Oframe (Some (reg_for ctx d)) [ Mach.Ki (Konst.kint ~bits:64 (Int64.of_int off)) ]
  in
  (* Phi copies per predecessor edge, sequentialised to respect
     simultaneous-assignment semantics. *)
  let phi_copies_for (pred_label : string) : Mach.minstr list =
    let copies = ref [] in
    List.iter
      (fun (b : Ir.block) ->
        List.iter
          (fun i ->
            match i with
            | Ir.IPhi (d, inc) -> (
                match List.assoc_opt pred_label inc with
                | Some v ->
                    copies := (reg_for ctx d, src_of ctx v, Ir.reg_ty f d) :: !copies
                | None -> ())
            | _ -> ())
          b.Ir.insts)
      (List.filter
         (fun (b : Ir.block) ->
           List.mem b.Ir.label (Ir.successors (Ir.find_block f pred_label).Ir.term))
         f.Ir.blocks);
    (* order copies: emit ones whose destination is not read by pending
       copies first; break cycles with a temporary *)
    let result = ref [] in
    let pending = ref !copies in
    let emit_copy (d, s, ty) =
      result := { Mach.op = Mach.Omov ty; dst = Some d; srcs = [ s ] } :: !result
    in
    let reads_reg r (_, s, _) = match s with Mach.Rs r' -> r' = r | _ -> false in
    let guard = ref 0 in
    while !pending <> [] && !guard < 1000 do
      incr guard;
      match
        List.partition
          (fun (d, _, _) -> not (List.exists (reads_reg d) !pending))
          !pending
      with
      | [], (d, s, ty) :: rest ->
          (* cycle: save the value about to be clobbered, redirect its
             readers to the temporary, then perform the copy *)
          let tmp = fresh_reg ctx d.Mach.rcls in
          result := { Mach.op = Mach.Omov ty; dst = Some tmp; srcs = [ Mach.Rs d ] } :: !result;
          emit_copy (d, s, ty);
          pending :=
            List.map
              (fun (d', s', ty') ->
                match s' with
                | Mach.Rs r when r = d -> (d', Mach.Rs tmp, ty')
                | _ -> (d', s', ty'))
              rest
      | ready, rest ->
          List.iter emit_copy ready;
          pending := rest
    done;
    List.rev !result
  in
  (* Kernel arguments are loaded from the kernarg segment at entry. *)
  let arg_loads =
    List.mapi (fun i r -> { Mach.op = Mach.Oarg i; dst = Some r; srcs = [] }) params
  in
  let entry_label =
    match f.Ir.blocks with b :: _ -> b.Ir.label | [] -> "entry"
  in
  let blocks =
    List.map
      (fun (b : Ir.block) ->
        let code = List.rev (List.fold_left lower_instr [] b.Ir.insts) in
        let code = if b.Ir.label = entry_label then arg_loads @ code else code in
        let code = code @ phi_copies_for b.Ir.label in
        let term =
          match b.Ir.term with
          | Ir.TBr l -> Mach.Tbr l
          | Ir.TCondBr (c, t, e) -> Mach.Tcbr (src_of ctx c, t, e)
          | Ir.TRet _ -> Mach.Tret
          | Ir.TUnreachable -> Mach.Tret
        in
        { Mach.mlab = b.Ir.label; code; term })
      f.Ir.blocks
  in
  {
    Mach.sym = f.Ir.fname;
    blocks;
    params;
    arg_tys;
    vregs = ctx.next_v;
    sregs = ctx.next_s;
    frame = ctx.frame;
    spill_slots = 0;
    launch_bounds = f.Ir.attrs.launch_bounds;
    max_pressure_v = 0;
    max_pressure_s = 0;
  }
