(* Operator enumerations shared by constants, IR, and the backends. *)

type binop =
  | Add | Sub | Mul | SDiv | SRem
  | FAdd | FSub | FMul | FDiv | FRem
  | And | Or | Xor | Shl | LShr | AShr
  | SMin | SMax | FMin | FMax

type cmpop = CEq | CNe | CLt | CLe | CGt | CGe

type castop = Zext | Sext | Trunc | SiToFp | FpToSi | FpExt | FpTrunc | Bitcast

let binop_to_string = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | SDiv -> "sdiv" | SRem -> "srem"
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv" | FRem -> "frem"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | Shl -> "shl" | LShr -> "lshr" | AShr -> "ashr"
  | SMin -> "smin" | SMax -> "smax" | FMin -> "fmin" | FMax -> "fmax"

let binop_of_string s =
  match s with
  | "add" -> Add | "sub" -> Sub | "mul" -> Mul | "sdiv" -> SDiv | "srem" -> SRem
  | "fadd" -> FAdd | "fsub" -> FSub | "fmul" -> FMul | "fdiv" -> FDiv | "frem" -> FRem
  | "and" -> And | "or" -> Or | "xor" -> Xor
  | "shl" -> Shl | "lshr" -> LShr | "ashr" -> AShr
  | "smin" -> SMin | "smax" -> SMax | "fmin" -> FMin | "fmax" -> FMax
  | _ -> Proteus_support.Util.failf "binop_of_string: %s" s

let cmpop_to_string = function
  | CEq -> "eq" | CNe -> "ne" | CLt -> "lt" | CLe -> "le" | CGt -> "gt" | CGe -> "ge"

let cmpop_of_string = function
  | "eq" -> CEq | "ne" -> CNe | "lt" -> CLt | "le" -> CLe | "gt" -> CGt | "ge" -> CGe
  | s -> Proteus_support.Util.failf "cmpop_of_string: %s" s

let castop_to_string = function
  | Zext -> "zext" | Sext -> "sext" | Trunc -> "trunc"
  | SiToFp -> "sitofp" | FpToSi -> "fptosi"
  | FpExt -> "fpext" | FpTrunc -> "fptrunc" | Bitcast -> "bitcast"

let castop_of_string = function
  | "zext" -> Zext | "sext" -> Sext | "trunc" -> Trunc
  | "sitofp" -> SiToFp | "fptosi" -> FpToSi
  | "fpext" -> FpExt | "fptrunc" -> FpTrunc | "bitcast" -> Bitcast
  | s -> Proteus_support.Util.failf "castop_of_string: %s" s

let is_float_binop = function
  | FAdd | FSub | FMul | FDiv | FRem | FMin | FMax -> true
  | Add | Sub | Mul | SDiv | SRem | And | Or | Xor | Shl | LShr | AShr | SMin | SMax -> false

let is_commutative = function
  | Add | Mul | And | Or | Xor | FAdd | FMul | SMin | SMax | FMin | FMax -> true
  | Sub | SDiv | SRem | FSub | FDiv | FRem | Shl | LShr | AShr -> false
