(* PTX-like textual assembly: the NVPTX path emits virtual-register
   assembly as text, which must then be assembled by [Ptxas] to obtain a
   loadable binary — exactly the extra step the paper charges to the
   NVIDIA JIT pipeline. The syntax is PTX-flavoured but regular enough
   to parse with a hand-written reader. *)

open Proteus_support
open Proteus_ir

let ty_code = function
  | Types.TBool -> "b"
  | Types.TInt 8 -> "i8"
  | Types.TInt 32 -> "s32"
  | Types.TInt 64 -> "s64"
  | Types.TFloat 32 -> "f32"
  | Types.TFloat 64 -> "f64"
  | Types.TPtr _ -> "p"
  | Types.TVoid -> "void"
  | t -> Util.failf "Ptx.ty_code: unsupported type %s" (Types.to_string t)

let ty_of_code = function
  | "b" -> Types.TBool
  | "i8" -> Types.TInt 8
  | "s32" -> Types.i32
  | "s64" -> Types.i64
  | "f32" -> Types.f32
  | "f64" -> Types.f64
  | "p" -> Types.TPtr (Types.TInt 8, Types.AS_global)
  | "void" -> Types.TVoid
  | c -> Util.failf "Ptx.ty_of_code: %s" c

let src_str = function
  | Mach.Rs r -> Mach.reg_to_string r
  | Mach.Ki (Konst.KBool b) -> if b then "#b:1" else "#b:0"
  | Mach.Ki (Konst.KInt (v, 32)) -> Printf.sprintf "#s32:%Ld" v
  | Mach.Ki (Konst.KInt (v, bits)) -> Printf.sprintf "#s%d:%Ld" bits v
  | Mach.Ki (Konst.KFloat (v, 32)) ->
      Printf.sprintf "#f32:0x%08lx" (Int32.bits_of_float v)
  | Mach.Ki (Konst.KFloat (v, _)) -> Printf.sprintf "#f64:0x%016Lx" (Int64.bits_of_float v)
  | Mach.Ki Konst.KNull -> "#null"
  | Mach.Gs g -> "@" ^ g

let parse_src (s : string) : Mach.msrc =
  if s = "" then Util.failf "Ptx.parse_src: empty"
  else if s.[0] = '%' then begin
    let cls = match s.[1] with 'v' -> Mach.CV | 's' -> Mach.CS | c -> Util.failf "Ptx: reg class %c" c in
    Mach.Rs { Mach.rid = int_of_string (String.sub s 2 (String.length s - 2)); rcls = cls }
  end
  else if s.[0] = '@' then Mach.Gs (String.sub s 1 (String.length s - 1))
  else if s = "#null" then Mach.Ki Konst.KNull
  else
    match String.index_opt s ':' with
    | Some i when s.[0] = '#' ->
        let tag = String.sub s 1 (i - 1) in
        let payload = String.sub s (i + 1) (String.length s - i - 1) in
        (match tag with
        | "b" -> Mach.Ki (Konst.kbool (payload <> "0"))
        | "s32" -> Mach.Ki (Konst.kint ~bits:32 (Int64.of_string payload))
        | "s64" -> Mach.Ki (Konst.kint ~bits:64 (Int64.of_string payload))
        | "s8" -> Mach.Ki (Konst.kint ~bits:8 (Int64.of_string payload))
        | "f32" ->
            Mach.Ki (Konst.KFloat (Int32.float_of_bits (Int32.of_string payload), 32))
        | "f64" ->
            Mach.Ki (Konst.KFloat (Int64.float_of_bits (Int64.of_string payload), 64))
        | t -> Util.failf "Ptx.parse_src: tag %s" t)
    | _ -> Util.failf "Ptx.parse_src: %s" s

let op_str (op : Mach.mop) : string =
  match op with
  | Mach.Obin (b, ty) -> Printf.sprintf "%s.%s" (Ops.binop_to_string b) (ty_code ty)
  | Mach.Ocmp (c, ty) -> Printf.sprintf "setp.%s.%s" (Ops.cmpop_to_string c) (ty_code ty)
  | Mach.Osel ty -> Printf.sprintf "selp.%s" (ty_code ty)
  | Mach.Ocast (c, d, s) ->
      Printf.sprintf "cvt.%s.%s.%s" (Ops.castop_to_string c) (ty_code d) (ty_code s)
  | Mach.Omov ty -> Printf.sprintf "mov.%s" (ty_code ty)
  | Mach.Old (Mach.SGlobal, ty) -> Printf.sprintf "ld.global.%s" (ty_code ty)
  | Mach.Old (Mach.SScratch, ty) -> Printf.sprintf "ld.local.%s" (ty_code ty)
  | Mach.Ost (Mach.SGlobal, ty) -> Printf.sprintf "st.global.%s" (ty_code ty)
  | Mach.Ost (Mach.SScratch, ty) -> Printf.sprintf "st.local.%s" (ty_code ty)
  | Mach.Oquery q -> "query." ^ q
  | Mach.Omath (m, ty) -> Printf.sprintf "%s.%s" m (ty_code ty)
  | Mach.Oatomic a -> "atom." ^ a
  | Mach.Obarrier -> "bar.sync"
  | Mach.Oframe -> "frame"
  | Mach.Oarg i -> Printf.sprintf "kernarg.%d" i
  | Mach.Ospill_st _ | Mach.Ospill_ld _ ->
      Util.failf "Ptx.op_str: spill ops cannot appear before register allocation"

let parse_op (s : string) : Mach.mop =
  let parts = String.split_on_char '.' s in
  match parts with
  | [ "setp"; c; ty ] -> Mach.Ocmp (Ops.cmpop_of_string c, ty_of_code ty)
  | [ "selp"; ty ] -> Mach.Osel (ty_of_code ty)
  | [ "cvt"; c; d; sty ] -> Mach.Ocast (Ops.castop_of_string c, ty_of_code d, ty_of_code sty)
  | [ "mov"; ty ] -> Mach.Omov (ty_of_code ty)
  | [ "ld"; "global"; ty ] -> Mach.Old (Mach.SGlobal, ty_of_code ty)
  | [ "ld"; "local"; ty ] -> Mach.Old (Mach.SScratch, ty_of_code ty)
  | [ "st"; "global"; ty ] -> Mach.Ost (Mach.SGlobal, ty_of_code ty)
  | [ "st"; "local"; ty ] -> Mach.Ost (Mach.SScratch, ty_of_code ty)
  | "query" :: rest -> Mach.Oquery (String.concat "." rest)
  | "math" :: rest ->
      let rec split_last = function
        | [ x ] -> ([], x)
        | x :: tl ->
            let init, last = split_last tl in
            (x :: init, last)
        | [] -> Util.failf "Ptx.parse_op: math"
      in
      let name_parts, ty = split_last rest in
      Mach.Omath (String.concat "." ("math" :: name_parts), ty_of_code ty)
  | "atom" :: rest -> Mach.Oatomic (String.concat "." rest)
  | [ "bar"; "sync" ] -> Mach.Obarrier
  | [ "frame" ] -> Mach.Oframe
  | [ "kernarg"; i ] -> Mach.Oarg (int_of_string i)
  | [ b; ty ] -> Mach.Obin (Ops.binop_of_string b, ty_of_code ty)
  | _ -> Util.failf "Ptx.parse_op: %s" s

(* ------------------------------------------------------------------ *)
(* Emission                                                            *)

let emit_mfunc (buf : Buffer.t) (f : Mach.mfunc) =
  Buffer.add_string buf (Printf.sprintf ".visible .entry %s\n" f.Mach.sym);
  (match f.Mach.launch_bounds with
  | Some (t, b) -> Buffer.add_string buf (Printf.sprintf ".maxntid %d %d\n" t b)
  | None -> ());
  Buffer.add_string buf (Printf.sprintf ".frame %d\n" f.Mach.frame);
  Buffer.add_string buf
    (Printf.sprintf ".params %s\n"
       (String.concat "," (List.map ty_code f.Mach.arg_tys)));
  Buffer.add_string buf "{\n";
  List.iter
    (fun (b : Mach.mblock) ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" b.Mach.mlab);
      List.iter
        (fun (i : Mach.minstr) ->
          let dst = match i.Mach.dst with Some d -> [ Mach.reg_to_string d ] | None -> [] in
          Buffer.add_string buf
            (Printf.sprintf "\t%s %s;\n" (op_str i.Mach.op)
               (String.concat ", " (dst @ List.map src_str i.Mach.srcs))))
        b.Mach.code;
      Buffer.add_string buf
        (match b.Mach.term with
        | Mach.Tbr l -> Printf.sprintf "\tbra %s;\n" l
        | Mach.Tcbr (c, t, e) -> Printf.sprintf "\tcbr %s, %s, %s;\n" (src_str c) t e
        | Mach.Tret -> "\tret;\n"))
    f.Mach.blocks;
  Buffer.add_string buf "}\n"

(* Produce PTX text for all kernels of a device module (kernels must be
   optimized and have device calls inlined). *)
let emit (m : Ir.modul) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "// proteus-sim ptx\n.version 7.8\n.target sm_70\n";
  List.iter
    (fun (g : Ir.gvar) ->
      if not g.Ir.gextern then
        Buffer.add_string buf
          (Printf.sprintf ".global %s %d // %s\n" g.Ir.gname (Types.size_of g.Ir.gty)
             (Types.to_string g.Ir.gty)))
    m.Ir.globals;
  List.iter
    (fun (f : Ir.func) ->
      if f.Ir.kind = Ir.Kernel && not f.Ir.is_decl then
        emit_mfunc buf (Isel.lower_func m f))
    m.Ir.funcs;
  Buffer.contents buf

(* Emit PTX from an already-selected machine function (pre-RA). *)
let emit_machine (fs : Mach.mfunc list) : string =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "// proteus-sim ptx\n.version 7.8\n.target sm_70\n";
  List.iter (emit_mfunc buf) fs;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing (the front half of ptxas)                                   *)

type parsed = { pfuncs : Mach.mfunc list }

let parse (text : string) : parsed =
  let lines = String.split_on_char '\n' text in
  let funcs = ref [] in
  let cur : Mach.mfunc option ref = ref None in
  let cur_block : Mach.mblock option ref = ref None in
  let flush_block () =
    match (!cur, !cur_block) with
    | Some f, Some b ->
        b.Mach.code <- List.rev b.Mach.code;
        f.Mach.blocks <- f.Mach.blocks @ [ b ];
        cur_block := None
    | _ -> cur_block := None
  in
  let max_reg = ref 0 and max_sreg = ref 0 in
  let flush_func () =
    flush_block ();
    (match !cur with
    | Some f ->
        f.Mach.vregs <- !max_reg;
        f.Mach.sregs <- !max_sreg;
        funcs := f :: !funcs
    | None -> ());
    cur := None
  in
  let note_src = function
    | Mach.Rs r ->
        if r.Mach.rcls = Mach.CV then max_reg := max !max_reg (r.Mach.rid + 1)
        else max_sreg := max !max_sreg (r.Mach.rid + 1)
    | _ -> ()
  in
  List.iter
    (fun raw ->
      let line = String.trim raw in
      if line = "" || (String.length line >= 2 && String.sub line 0 2 = "//") then ()
      else if String.length line > 0 && line.[0] = '.' then begin
        let words = String.split_on_char ' ' line in
        match words with
        | ".visible" :: ".entry" :: name :: _ ->
            flush_func ();
            max_reg := 0;
            max_sreg := 0;
            cur :=
              Some
                {
                  Mach.sym = name;
                  blocks = [];
                  params = [];
                  arg_tys = [];
                  vregs = 0;
                  sregs = 0;
                  frame = 0;
                  spill_slots = 0;
                  launch_bounds = None;
                  max_pressure_v = 0;
                  max_pressure_s = 0;
                }
        | [ ".maxntid"; t; b ] -> (
            match !cur with
            | Some f -> f.Mach.launch_bounds <- Some (int_of_string t, int_of_string b)
            | None -> ())
        | [ ".frame"; n ] -> (
            match !cur with
            | Some f -> f.Mach.frame <- int_of_string n
            | None -> ())
        | [ ".params"; tys ] -> (
            match !cur with
            | Some f ->
                f.Mach.arg_tys <-
                  (if tys = "" then []
                   else List.map ty_of_code (String.split_on_char ',' tys))
            | None -> ())
        | ".params" :: [] -> ()
        | ".global" :: _ -> () (* globals travel separately in the object *)
        | ".version" :: _ | ".target" :: _ -> ()
        | _ -> Util.failf "Ptx.parse: bad directive %s" line
      end
      else if line = "{" then ()
      else if line = "}" then flush_func ()
      else if String.length line > 1 && line.[String.length line - 1] = ':' then begin
        flush_block ();
        cur_block :=
          Some { Mach.mlab = String.sub line 0 (String.length line - 1); code = []; term = Mach.Tret }
      end
      else begin
        (* instruction or terminator: "op a, b, c;" *)
        let line =
          if String.length line > 0 && line.[String.length line - 1] = ';' then
            String.sub line 0 (String.length line - 1)
          else line
        in
        let opname, rest =
          match String.index_opt line ' ' with
          | Some i ->
              ( String.sub line 0 i,
                String.sub line (i + 1) (String.length line - i - 1) )
          | None -> (line, "")
        in
        let operands =
          if String.trim rest = "" then []
          else List.map String.trim (String.split_on_char ',' rest)
        in
        match (opname, operands, !cur_block) with
        | "bra", [ l ], Some b ->
            b.Mach.term <- Mach.Tbr l;
            flush_block ()
        | "cbr", [ c; t; e ], Some b ->
            let cs = parse_src c in
            note_src cs;
            b.Mach.term <- Mach.Tcbr (cs, t, e);
            flush_block ()
        | "ret", [], Some b ->
            b.Mach.term <- Mach.Tret;
            flush_block ()
        | _, _, Some b ->
            let op = parse_op opname in
            let has_dst =
              match op with
              | Mach.Ost _ | Mach.Obarrier -> false
              | Mach.Oatomic _ -> List.length operands = 3
              | _ -> true
            in
            let dst, srcs =
              if has_dst then
                match operands with
                | d :: rest -> (
                    match parse_src d with
                    | Mach.Rs r ->
                        note_src (Mach.Rs r);
                        (Some r, rest)
                    | _ -> Util.failf "Ptx.parse: destination is not a register: %s" line)
                | [] -> Util.failf "Ptx.parse: missing destination: %s" line
              else (None, operands)
            in
            let srcs = List.map parse_src srcs in
            List.iter note_src srcs;
            (match !cur with
            | Some f ->
                f.Mach.vregs <- max f.Mach.vregs !max_reg;
                f.Mach.sregs <- max f.Mach.sregs !max_sreg
            | None -> ());
            b.Mach.code <- { Mach.op; dst; srcs } :: b.Mach.code
        | _, _, None -> Util.failf "Ptx.parse: instruction outside block: %s" line
      end)
    lines;
  flush_func ();
  { pfuncs = List.rev !funcs }
