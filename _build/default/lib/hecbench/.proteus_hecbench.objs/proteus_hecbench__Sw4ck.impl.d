lib/hecbench/sw4ck.ml: App Array List Printf String
